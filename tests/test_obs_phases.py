"""Tests for phase spans, flow links, the critical-path walker, and exports."""

import json

import numpy as np
import pytest

from repro.bench import build
from repro.bench.trace import Tracer
from repro.cli import main
from repro.machine import ClusterSpec
from repro.mpi.ops import SUM
from repro.obs.critical import critical_path
from repro.obs.export import chrome_trace, metrics_dump, write_json
from repro.obs.taxonomy import FLOW_FLAG_WAKEUP, FLOW_PUT_COUNTER


def run_allreduce(nodes=2, tasks=2, nbytes=4096):
    machine, stack = build("srm", ClusterSpec(nodes=nodes, tasks_per_node=tasks))
    total = machine.spec.total_tasks
    count = max(1, nbytes // 8)
    sources = {r: np.full(count, float(r + 1)) for r in range(total)}
    outs = {r: np.zeros(count) for r in range(total)}

    def program(task):
        yield from stack.allreduce(task, sources[task.rank], outs[task.rank], SUM)

    result = machine.launch(program)
    return machine, result


# -- span recording ---------------------------------------------------------


def test_spans_recorded_and_closed():
    machine, result = run_allreduce()
    spans = machine.obs.recorder.spans
    assert spans, "protocols should record phase spans"
    assert all(span.closed for span in spans)
    assert all(result.start_time <= span.start <= span.end <= result.end_time
               for span in spans)


def test_spans_nest_inside_parents():
    machine, _ = run_allreduce()
    spans = machine.obs.recorder.spans
    nested = [span for span in spans if span.depth > 0]
    assert nested, "protocol phases should contain substrate phases"
    for child in nested:
        parent = spans[child.parent]
        assert parent.rank == child.rank
        assert parent.start <= child.start
        assert parent.end >= child.end
        assert parent.depth == child.depth - 1


def test_spans_cover_every_rank():
    machine, _ = run_allreduce(nodes=2, tasks=2)
    assert machine.obs.recorder.ranks() == [0, 1, 2, 3]


def test_by_phase_totals_are_positive():
    machine, _ = run_allreduce()
    totals = machine.obs.recorder.by_phase()
    assert totals
    assert all(seconds >= 0 for seconds in totals.values())


# -- flow links -------------------------------------------------------------


def test_put_counter_flow_recorded():
    machine, _ = run_allreduce()
    flows = [f for f in machine.obs.recorder.flows if f.kind == FLOW_PUT_COUNTER]
    assert flows, "inter-node puts should link to their counter increments"
    cross = [f for f in flows if f.src_rank != f.dst_rank]
    assert cross, "at least one put crosses ranks"
    assert all(f.dst_ts >= f.src_ts for f in flows)


def test_flag_wakeup_flow_recorded():
    machine, _ = run_allreduce()
    flows = [f for f in machine.obs.recorder.flows if f.kind == FLOW_FLAG_WAKEUP]
    assert flows, "flag stores should link to the waiters they release"
    assert all(f.src_ts == f.dst_ts for f in flows)


# -- critical path ----------------------------------------------------------


def test_critical_path_partitions_makespan():
    machine, result = run_allreduce()
    path = critical_path(
        machine.obs.recorder, start=result.start_time, end=result.end_time
    )
    assert path.total == pytest.approx(result.elapsed)
    # The walk is a partition: attributed time equals the window exactly.
    assert path.attributed == pytest.approx(path.total, rel=1e-9)
    assert sum(path.by_phase().values()) == pytest.approx(path.total, rel=1e-9)
    # Acceptance bar: the printed breakdown covers >= 95% of the makespan.
    assert path.attributed >= 0.95 * result.elapsed


def test_critical_path_segments_are_chronological():
    machine, result = run_allreduce()
    path = critical_path(
        machine.obs.recorder, start=result.start_time, end=result.end_time
    )
    for earlier, later in zip(path.segments, path.segments[1:]):
        assert later.start == pytest.approx(earlier.end)


def test_critical_path_follows_flows_across_ranks():
    machine, result = run_allreduce(nodes=4, tasks=2, nbytes=16384)
    path = critical_path(
        machine.obs.recorder, start=result.start_time, end=result.end_time
    )
    assert len({segment.rank for segment in path.segments}) > 1


def test_critical_path_large_pipelined_allreduce():
    machine, result = run_allreduce(nodes=2, tasks=2, nbytes=262144)
    path = critical_path(
        machine.obs.recorder, start=result.start_time, end=result.end_time
    )
    assert path.attributed >= 0.95 * result.elapsed


def test_critical_path_without_spans_raises():
    machine, _stack = build("srm", ClusterSpec(nodes=1, tasks_per_node=2))
    with pytest.raises(ValueError):
        critical_path(machine.obs.recorder)


# -- exports ----------------------------------------------------------------


def test_chrome_trace_schema():
    machine, _ = run_allreduce()
    events = chrome_trace(machine)
    assert events
    json.dumps(events)  # must be serializable
    for event in events:
        assert event["ph"] in {"X", "s", "f", "M", "C"}
        assert "pid" in event
        if event["ph"] == "C":
            # Resource counter tracks: named signal, no thread affinity.
            assert event["name"].startswith("resource:")
            assert set(event["args"]) == {"occupancy", "queued", "saturated"}
        else:
            assert "tid" in event
        if event["ph"] == "X":
            assert event["ts"] >= 0 and event["dur"] >= 0
            assert "args" in event


def test_chrome_trace_has_nested_phase_slices():
    machine, _ = run_allreduce()
    phases = [e for e in chrome_trace(machine) if e.get("cat") == "phase"]
    assert phases
    assert max(e["args"]["depth"] for e in phases) > 0


def test_chrome_trace_flow_event_pairs():
    machine, _ = run_allreduce()
    events = chrome_trace(machine)
    starts = {e["id"]: e for e in events if e["ph"] == "s"}
    finishes = {e["id"]: e for e in events if e["ph"] == "f"}
    assert starts and set(starts) == set(finishes)
    # Acceptance bar: a LAPI put is linked to its remote counter increment.
    put_flows = [e for e in starts.values() if e["name"] == FLOW_PUT_COUNTER]
    assert put_flows
    assert all(e["ph"] == "f" and e["bp"] == "e" for e in finishes.values())


def test_chrome_trace_with_tracer_call_slices():
    machine, stack = build("srm", ClusterSpec(nodes=2, tasks_per_node=2))
    tracer = Tracer(machine)
    traced = tracer.wrap(stack)
    buffers = {r: np.zeros(1024, np.uint8) for r in range(4)}
    buffers[0][:] = 1

    def program(task):
        yield from traced.broadcast(task, buffers[task.rank], root=0)

    machine.launch(program)
    events = chrome_trace(machine, tracer)
    calls = [e for e in events if e.get("cat") == "call"]
    assert len(calls) == 4
    assert all(e["name"].startswith("broadcast[") for e in calls)


def test_chrome_trace_byte_stable_across_identical_runs():
    first = json.dumps(chrome_trace(run_allreduce()[0]))
    second = json.dumps(chrome_trace(run_allreduce()[0]))
    assert first == second


def test_chrome_trace_independent_of_flow_recording_order():
    import random

    machine, _ = run_allreduce()
    reference = json.dumps(chrome_trace(machine))
    # Shuffling the recorded flow list must not change the artifact: flow
    # events are sorted and ids assigned deterministically at export time.
    random.Random(7).shuffle(machine.obs.recorder.flows)
    assert json.dumps(chrome_trace(machine)) == reference


def test_chrome_trace_counter_tracks_sorted_and_optional():
    machine, _ = run_allreduce()
    counters = [e for e in chrome_trace(machine) if e["ph"] == "C"]
    assert counters, "resource occupancy must export as counter tracks"
    assert {e["name"] for e in counters} >= {"resource:bus[0]", "resource:bus[1]"}
    keys = [(e["ts"], e["name"]) for e in counters]
    assert keys == sorted(keys)
    without = chrome_trace(machine, include_counters=False)
    assert not any(e["ph"] == "C" for e in without)


def test_metrics_dump_structure():
    machine, _ = run_allreduce()
    dump = metrics_dump(machine)
    json.dumps(dump)
    assert dump["simulated_time"] > 0
    assert dump["events_processed"] > 0
    assert dump["metrics"]["task.copies"]["value"] > 0
    assert dump["phase_totals"]
    assert dump["flow_counts"][FLOW_PUT_COUNTER] > 0
    assert set(dump["tasks"]) == {0, 1, 2, 3}
    assert dump["tasks"][0]["lapi"]["puts"] >= 0
    assert dump["resources"]["bus[0]"]["kind"] == "bandwidth"
    assert list(dump["resources"]) == sorted(dump["resources"])


def test_write_json_roundtrip(tmp_path):
    target = tmp_path / "out.json"
    write_json(str(target), {"a": [1, 2]})
    assert json.loads(target.read_text()) == {"a": [1, 2]}


# -- CLI --------------------------------------------------------------------


def test_profile_cli_breakdown(capsys):
    code = main(
        ["profile", "--op", "allreduce", "--bytes", "4096", "--nodes", "2", "--tasks", "2"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "critical path" in out
    assert "% of makespan" in out
    attributed = float(out.split("attributed: ")[1].split("%")[0])
    assert attributed >= 95.0


def test_profile_cli_writes_exports(tmp_path, capsys):
    chrome = tmp_path / "trace.json"
    metrics = tmp_path / "metrics.json"
    code = main(
        [
            "profile", "--op", "barrier", "--nodes", "2", "--tasks", "2",
            "--chrome-out", str(chrome), "--json-out", str(metrics),
        ]
    )
    assert code == 0
    events = json.loads(chrome.read_text())
    assert any(e.get("cat") == "phase" for e in events)
    dump = json.loads(metrics.read_text())
    assert "phase_totals" in dump and "calls" in dump


def test_profile_cli_prints_wait_state_table(capsys):
    code = main(
        ["profile", "--op", "allreduce", "--bytes", "4096", "--nodes", "2", "--tasks", "2"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "wait states" in out
    assert "blocked intervals" in out
    # The closed taxonomy: at least one named state shows up in the table.
    assert any(state in out for state in (
        "late-sender", "late-release", "bandwidth-contention",
        "resource-queueing", "detection-only",
    ))


def test_profile_cli_policy_diff(capsys):
    code = main(
        [
            "profile", "--op", "allreduce", "--bytes", "65536",
            "--nodes", "2", "--tasks", "2", "--policy", "cost", "--diff", "paper",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "differential analysis, policy paper (baseline) vs cost" in out
    assert "allreduce srm: policy paper -> cost" in out


def test_trace_cli_fixed_policy(capsys):
    code = main(
        [
            "trace", "--op", "broadcast", "--bytes", "2048", "--nodes", "2",
            "--tasks", "2", "--policy", "fixed", "--fixed", "broadcast=pipelined",
        ]
    )
    assert code == 0
    assert "totals:" in capsys.readouterr().out


def test_trace_cli_fixed_policy_requires_choices(capsys):
    with pytest.raises(SystemExit):
        main(["trace", "--op", "broadcast", "--nodes", "2", "--tasks", "2",
              "--policy", "fixed"])


def test_trace_cli_chrome_out(tmp_path, capsys):
    target = tmp_path / "trace.json"
    code = main(
        [
            "trace", "--op", "broadcast", "--bytes", "2048",
            "--nodes", "2", "--tasks", "2", "--chrome-out", str(target),
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert f"wrote Perfetto trace to {target}" in out
    events = json.loads(target.read_text())
    assert any(e.get("cat") == "call" for e in events)
    assert any(e.get("ph") == "s" for e in events)
