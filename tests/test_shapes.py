"""Tests for the executable figure-shape assertions and the committed seed."""

import pathlib

from repro.bench.export import identity_fingerprint
from repro.bench.shapes import check_shapes, format_shape_results
from repro.bench.snapshot import SCHEMA_VERSION, cell_key, load_snapshot

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SEED = REPO_ROOT / "BENCH_seed.json"

GOOD_CONFIG = {"small_protocol_max": 64 * 1024, "pipeline_min": 8 * 1024}


def make_cell(operation, stack, nbytes, nodes, us):
    return {
        "operation": operation,
        "stack": stack,
        "nbytes": nbytes,
        "nodes": nodes,
        "total_tasks": nodes * 16,
        "repeats": 3,
        "microseconds": us,
        "metrics": {},
        "critical_path": None,
    }


def make_snapshot(cells, srm_config=GOOD_CONFIG):
    return {
        "kind": "repro-bench-snapshot",
        "schema_version": SCHEMA_VERSION,
        "label": "t",
        "identity": {"srm_config": srm_config},
        "fingerprint": "0" * 12,
        "grid": {},
        "cells": cells,
    }


def result_by_name(snapshot):
    return {result.name: result for result in check_shapes(snapshot)}


# -- individual checks on synthetic grids -----------------------------------


def test_monotone_in_size_detects_inversion():
    good = make_snapshot([
        make_cell("reduce", "srm", 64, 2, 10.0),
        make_cell("reduce", "srm", 1024, 2, 20.0),
    ])
    assert result_by_name(good)["monotone-in-size"].ok
    bad = make_snapshot([
        make_cell("reduce", "srm", 64, 2, 20.0),
        make_cell("reduce", "srm", 1024, 2, 10.0),
    ])
    verdict = result_by_name(bad)["monotone-in-size"]
    assert not verdict.ok
    assert "reduce/srm" in verdict.detail


def test_monotone_in_size_allows_slack():
    jitter = make_snapshot([
        make_cell("reduce", "srm", 64, 2, 10.0),
        make_cell("reduce", "srm", 1024, 2, 9.9),  # within the 2% slack
    ])
    assert result_by_name(jitter)["monotone-in-size"].ok


def test_monotone_in_procs_detects_inversion():
    bad = make_snapshot([
        make_cell("reduce", "srm", 64, 2, 20.0),
        make_cell("reduce", "srm", 64, 4, 10.0),
    ])
    assert not result_by_name(bad)["monotone-in-procs"].ok


def test_srm_wins_small_detects_upset():
    good = make_snapshot([
        make_cell("broadcast", "srm", 1024, 4, 10.0),
        make_cell("broadcast", "ibm", 1024, 4, 20.0),
    ])
    assert result_by_name(good)["srm-wins-small"].ok
    bad = make_snapshot([
        make_cell("broadcast", "srm", 1024, 4, 30.0),
        make_cell("broadcast", "ibm", 1024, 4, 20.0),
    ])
    assert not result_by_name(bad)["srm-wins-small"].ok
    # Sizes above 64KB are outside the claim.
    large = make_snapshot([
        make_cell("broadcast", "srm", 1024 * 1024, 4, 30.0),
        make_cell("broadcast", "ibm", 1024 * 1024, 4, 20.0),
    ])
    assert result_by_name(large)["srm-wins-small"].ok


def test_srm_wins_barrier():
    good = make_snapshot([
        make_cell("barrier", "srm", 0, 4, 10.0),
        make_cell("barrier", "mpich", 0, 4, 30.0),
    ])
    assert result_by_name(good)["srm-wins-barrier"].ok
    bad = make_snapshot([
        make_cell("barrier", "srm", 0, 4, 40.0),
        make_cell("barrier", "mpich", 0, 4, 30.0),
    ])
    assert not result_by_name(bad)["srm-wins-barrier"].ok


def test_fig8_crossing_requires_both_baselines():
    cells = [
        make_cell("allreduce", "ibm", 8, 4, 20.0),
        make_cell("allreduce", "mpich", 8, 4, 30.0),
        make_cell("allreduce", "ibm", 8192, 4, 300.0),
        make_cell("allreduce", "mpich", 8192, 4, 200.0),
    ]
    assert result_by_name(make_snapshot(cells))["fig8-baseline-crossing"].ok
    # No crossing: MPICH stays below IBM even for tiny messages.
    flat = make_snapshot([
        make_cell("allreduce", "ibm", 8, 4, 30.0),
        make_cell("allreduce", "mpich", 8, 4, 20.0),
        make_cell("allreduce", "ibm", 8192, 4, 300.0),
        make_cell("allreduce", "mpich", 8192, 4, 200.0),
    ])
    assert not result_by_name(flat)["fig8-baseline-crossing"].ok
    # Only one baseline in the grid: the claim cannot be evaluated.
    srm_only = make_snapshot([make_cell("allreduce", "srm", 8, 4, 10.0)])
    assert "fig8-baseline-crossing" not in result_by_name(srm_only)


def test_broadcast_protocol_switch_guards_config_and_per_byte_cost():
    cells = [
        make_cell("broadcast", "srm", 1024, 4, 50.0),       # 0.0488 us/B
        make_cell("broadcast", "srm", 64 * 1024, 4, 1000.0),  # 0.0153 us/B
        make_cell("broadcast", "srm", 1024 * 1024, 4, 10000.0),  # 0.0095 us/B
    ]
    assert result_by_name(make_snapshot(cells))["broadcast-protocol-switch"].ok
    retuned = make_snapshot(cells, srm_config={"small_protocol_max": 32 * 1024,
                                               "pipeline_min": 8 * 1024})
    verdict = result_by_name(retuned)["broadcast-protocol-switch"]
    assert not verdict.ok
    assert "small_protocol_max" in verdict.detail
    regressive = make_snapshot([
        make_cell("broadcast", "srm", 1024, 4, 50.0),
        make_cell("broadcast", "srm", 64 * 1024, 4, 5000.0),  # costlier per byte
    ])
    assert not result_by_name(regressive)["broadcast-protocol-switch"].ok


def test_format_shape_results_counts_failures():
    bad = make_snapshot([
        make_cell("reduce", "srm", 64, 2, 20.0),
        make_cell("reduce", "srm", 1024, 2, 10.0),
    ])
    text = format_shape_results(check_shapes(bad))
    assert "[FAIL] monotone-in-size" in text
    assert "violated" in text


# -- the committed seed baseline --------------------------------------------


def test_seed_snapshot_is_committed_and_valid():
    snapshot = load_snapshot(str(SEED))
    assert snapshot["schema_version"] == SCHEMA_VERSION
    assert snapshot["fingerprint"] == identity_fingerprint(snapshot["identity"])
    keys = [cell_key(cell) for cell in snapshot["cells"]]
    assert keys == sorted(keys) and len(set(keys)) == len(keys)


def test_seed_snapshot_passes_every_shape_claim():
    snapshot = load_snapshot(str(SEED))
    results = check_shapes(snapshot)
    # The committed grid supports all six claims.
    assert len(results) == 6
    failures = [result for result in results if not result.ok]
    assert not failures, format_shape_results(results)
