"""Unit tests for SRMConfig: switch points, chunking rules, validation."""

import pytest

from repro.core import SRMConfig
from repro.errors import ConfigurationError

KB = 1024


def test_paper_defaults():
    config = SRMConfig()
    assert config.small_protocol_max == 64 * KB  # §2.4 switch point
    assert config.pipeline_min == 8 * KB
    assert config.pipeline_chunk == 4 * KB
    assert config.allreduce_exchange_max == 16 * KB
    assert config.inter_family == "binomial"


def test_is_large_boundary():
    config = SRMConfig()
    assert not config.is_large(64 * KB)
    assert config.is_large(64 * KB + 1)


def test_chunks_small_single():
    config = SRMConfig()
    assert config.chunks(100) == [(0, 100)]
    assert config.chunks(8 * KB) == [(0, 8 * KB)]


def test_chunks_pipelined_4k():
    config = SRMConfig()
    chunks = config.chunks(10 * KB)
    assert chunks == [(0, 4 * KB), (4 * KB, 4 * KB), (8 * KB, 2 * KB)]


def test_chunks_exactly_divisible():
    config = SRMConfig()
    chunks = config.chunks(16 * KB)
    assert len(chunks) == 4
    assert all(size == 4 * KB for _offset, size in chunks)


def test_chunks_large_64k():
    config = SRMConfig()
    chunks = config.chunks(200 * KB)
    assert chunks[0] == (0, 64 * KB)
    assert chunks[-1] == (192 * KB, 8 * KB)
    assert sum(size for _o, size in chunks) == 200 * KB


def test_chunks_zero_bytes():
    assert SRMConfig().chunks(0) == [(0, 0)]


def test_chunks_negative_rejected():
    with pytest.raises(ConfigurationError):
        SRMConfig().chunks(-1)


def test_chunks_cover_message_exactly():
    config = SRMConfig()
    for nbytes in (1, 4095, 4096, 4097, 65535, 65536, 65537, 1_000_000):
        chunks = config.chunks(nbytes)
        # Contiguous, ordered, complete coverage.
        position = 0
        for offset, size in chunks:
            assert offset == position
            assert size > 0
            position += size
        assert position == nbytes


def test_shared_buffer_holds_any_chunk():
    config = SRMConfig()
    assert config.shared_buffer_bytes >= config.large_chunk
    assert config.shared_buffer_bytes >= config.allreduce_exchange_max
    small = SRMConfig(pipeline_chunk=KB, pipeline_min=2 * KB, large_chunk=8 * KB)
    assert small.shared_buffer_bytes >= 16 * KB  # still >= allreduce cutoff


def test_validation():
    with pytest.raises(ConfigurationError):
        SRMConfig(pipeline_chunk=0)
    with pytest.raises(ConfigurationError):
        SRMConfig(pipeline_min=KB, pipeline_chunk=2 * KB)
    with pytest.raises(ConfigurationError):
        SRMConfig(small_protocol_max=KB, pipeline_min=8 * KB)
    with pytest.raises(ConfigurationError):
        SRMConfig(put_window=0)
    with pytest.raises(ConfigurationError):
        SRMConfig(allreduce_exchange_max=-1)


def test_evolve():
    base = SRMConfig()
    changed = base.evolve(pipeline_chunk=2 * KB, pipeline_min=8 * KB)
    assert changed.pipeline_chunk == 2 * KB
    assert base.pipeline_chunk == 4 * KB
