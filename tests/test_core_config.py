"""Unit tests for SRMConfig: switch points, chunking rules, validation."""

import pytest

from repro.core import SRMConfig
from repro.errors import ConfigurationError

KB = 1024


def test_paper_defaults():
    config = SRMConfig()
    assert config.small_protocol_max == 64 * KB  # §2.4 switch point
    assert config.pipeline_min == 8 * KB
    assert config.pipeline_chunk == 4 * KB
    assert config.allreduce_exchange_max == 16 * KB
    assert config.inter_family == "binomial"


def test_is_large_boundary():
    config = SRMConfig()
    assert not config.is_large(64 * KB)
    assert config.is_large(64 * KB + 1)


def test_chunks_small_single():
    config = SRMConfig()
    assert config.chunks(100) == [(0, 100)]
    assert config.chunks(8 * KB) == [(0, 8 * KB)]


def test_chunks_pipelined_4k():
    config = SRMConfig()
    chunks = config.chunks(10 * KB)
    assert chunks == [(0, 4 * KB), (4 * KB, 4 * KB), (8 * KB, 2 * KB)]


def test_chunks_exactly_divisible():
    config = SRMConfig()
    chunks = config.chunks(16 * KB)
    assert len(chunks) == 4
    assert all(size == 4 * KB for _offset, size in chunks)


def test_chunks_large_64k():
    config = SRMConfig()
    chunks = config.chunks(200 * KB)
    assert chunks[0] == (0, 64 * KB)
    assert chunks[-1] == (192 * KB, 8 * KB)
    assert sum(size for _o, size in chunks) == 200 * KB


def test_chunks_zero_bytes():
    assert SRMConfig().chunks(0) == [(0, 0)]


def test_chunks_negative_rejected():
    with pytest.raises(ConfigurationError):
        SRMConfig().chunks(-1)


def test_chunks_cover_message_exactly():
    config = SRMConfig()
    for nbytes in (1, 4095, 4096, 4097, 65535, 65536, 65537, 1_000_000):
        chunks = config.chunks(nbytes)
        # Contiguous, ordered, complete coverage.
        position = 0
        for offset, size in chunks:
            assert offset == position
            assert size > 0
            position += size
        assert position == nbytes


def test_shared_buffer_holds_any_chunk():
    config = SRMConfig()
    assert config.shared_buffer_bytes >= config.large_chunk
    assert config.shared_buffer_bytes >= config.allreduce_exchange_max
    small = SRMConfig(pipeline_chunk=KB, pipeline_min=2 * KB, large_chunk=8 * KB)
    assert small.shared_buffer_bytes >= 16 * KB  # still >= allreduce cutoff


def test_validation():
    with pytest.raises(ConfigurationError):
        SRMConfig(pipeline_chunk=0)
    with pytest.raises(ConfigurationError):
        SRMConfig(pipeline_min=KB, pipeline_chunk=2 * KB)
    with pytest.raises(ConfigurationError):
        SRMConfig(small_protocol_max=KB, pipeline_min=8 * KB)
    with pytest.raises(ConfigurationError):
        SRMConfig(put_window=0)
    with pytest.raises(ConfigurationError):
        SRMConfig(allreduce_exchange_max=-1)


def test_evolve():
    base = SRMConfig()
    changed = base.evolve(pipeline_chunk=2 * KB, pipeline_min=8 * KB)
    assert changed.pipeline_chunk == 2 * KB
    assert base.pipeline_chunk == 4 * KB


# -- construction-time validation of families and allgather_ring_min --------


def test_bad_inter_family_rejected_at_construction():
    with pytest.raises(ConfigurationError, match="inter_family"):
        SRMConfig(inter_family="bogus")


def test_bad_intra_reduce_family_rejected_at_construction():
    with pytest.raises(ConfigurationError, match="intra_reduce_family"):
        SRMConfig(intra_reduce_family="kary")  # needs explicit arity: not valid here


def test_family_error_lists_valid_choices():
    with pytest.raises(ConfigurationError, match="binomial"):
        SRMConfig(inter_family="")


def test_all_registered_families_accepted():
    from repro.trees.embedding import TREE_FAMILIES

    for family in TREE_FAMILIES:
        config = SRMConfig(inter_family=family, intra_reduce_family=family)
        assert config.inter_family == family


def test_negative_allgather_ring_min_rejected():
    with pytest.raises(ConfigurationError, match="allgather_ring_min"):
        SRMConfig(allgather_ring_min=-1)


def test_zero_allgather_ring_min_allowed():
    assert SRMConfig(allgather_ring_min=0).allgather_ring_min == 0


# -- exhaustive chunk-boundary tiling ---------------------------------------


def _assert_exact_tiling(config, nbytes):
    """Offsets tile [0, nbytes) exactly: contiguous, no overlap, no gap."""
    chunks = config.chunks(nbytes)
    assert chunks, f"no chunks for {nbytes} B"
    position = 0
    for offset, size in chunks:
        assert offset == position, f"gap/overlap at {offset} (expected {position})"
        position += size
    assert position == nbytes
    if nbytes > 0:
        assert all(size > 0 for _o, size in chunks)
        # Only the final chunk may be short.
        sizes = [size for _o, size in chunks]
        assert all(size == sizes[0] for size in sizes[:-1])
        assert sizes[-1] <= sizes[0]


@pytest.mark.parametrize(
    "nbytes",
    [
        8 * KB - 1, 8 * KB, 8 * KB + 1,          # pipeline_min boundary
        64 * KB - 1, 64 * KB, 64 * KB + 1,       # small_protocol_max boundary
        12 * KB - 1, 12 * KB, 12 * KB + 1,       # pipeline_chunk multiple
        128 * KB - 1, 128 * KB, 128 * KB + 1,    # large_chunk multiple
        1, 4 * KB, 192 * KB + 17,
    ],
)
def test_chunks_tile_exactly_at_boundaries(nbytes):
    _assert_exact_tiling(SRMConfig(), nbytes)


def test_pipeline_min_boundary_is_inclusive():
    config = SRMConfig()
    assert config.chunks(8 * KB) == [(0, 8 * KB)]            # still one chunk
    assert config.chunks(8 * KB + 1)[0] == (0, 4 * KB)       # now pipelined


def test_small_protocol_max_boundary_is_inclusive():
    config = SRMConfig()
    at_limit = config.chunks(64 * KB)
    assert all(size == 4 * KB for _o, size in at_limit)      # still 4 KB tiles
    over = config.chunks(64 * KB + 1)
    assert over[0] == (0, 64 * KB)                           # now streaming
    assert over[-1] == (64 * KB, 1)


def test_chunks_boundary_tiling_with_odd_chunk_sizes():
    config = SRMConfig(pipeline_chunk=3 * KB, pipeline_min=6 * KB, large_chunk=7 * KB)
    for nbytes in (6 * KB - 1, 6 * KB, 6 * KB + 1, 9 * KB, 9 * KB + 1, 70 * KB + 3):
        _assert_exact_tiling(config, nbytes)
