"""Unit tests for SRM context structures: NodeState, plans, flow-control
counters."""

import numpy as np
import pytest

from repro.core import SRMConfig, SRMContext
from repro.core.context import NodeState
from repro.errors import ConfigurationError
from repro.machine import ClusterSpec, Machine


def make_machine(nodes=2, tasks=4):
    return Machine(ClusterSpec(nodes=nodes, tasks_per_node=tasks))


# ---------------------------------------------------------------------------
# NodeState
# ---------------------------------------------------------------------------


def test_node_state_full_node():
    machine = make_machine()
    state = NodeState(machine.nodes[0], SRMConfig())
    assert state.size == 4
    assert state.members == (0, 1, 2, 3)
    assert state.master_rank == 0
    assert state.index_of(machine.task(2)) == 2
    assert state.is_master(machine.task(0))
    assert not state.is_master(machine.task(1))


def test_node_state_member_subset():
    machine = make_machine()
    state = NodeState(machine.nodes[0], SRMConfig(), members=[1, 3])
    assert state.size == 2
    assert state.master_rank == 1
    assert state.index_of_rank(3) == 1
    with pytest.raises(ConfigurationError):
        state.index_of_rank(0)


def test_node_state_empty_members_rejected():
    machine = make_machine()
    with pytest.raises(ConfigurationError):
        NodeState(machine.nodes[0], SRMConfig(), members=[])


def test_node_state_structures_sized_to_members():
    machine = make_machine()
    state = NodeState(machine.nodes[0], SRMConfig(), members=[0, 2])
    assert len(state.bcast_buf.flags(0)) == 2
    assert len(state.reduce_slots) == 2
    assert len(state.barrier_flags) == 2
    assert state.bcast_seq == [0, 0]


def test_reduce_slot_alternates_and_sizes():
    machine = make_machine()
    state = NodeState(machine.nodes[0], SRMConfig())
    a = state.reduce_slot(0, 0, 128)
    b = state.reduce_slot(0, 1, 128)
    c = state.reduce_slot(0, 2, 128)
    assert a.nbytes == 128
    assert not np.shares_memory(a, b)
    assert np.shares_memory(a, c)  # parity 0 again


def test_partial_buffer_alternates():
    machine = make_machine()
    state = NodeState(machine.nodes[0], SRMConfig())
    assert not np.shares_memory(state.partial_buffer(0, 64), state.partial_buffer(1, 64))
    assert np.shares_memory(state.partial_buffer(0, 64), state.partial_buffer(2, 64))


# ---------------------------------------------------------------------------
# SRMContext
# ---------------------------------------------------------------------------


def test_context_defaults_to_world():
    machine = make_machine()
    ctx = SRMContext(machine)
    assert ctx.members == tuple(range(8))
    assert sorted(ctx.nodes) == [0, 1]
    assert ctx.group_root == 0


def test_context_group_builds_only_used_nodes():
    machine = make_machine()
    ctx = SRMContext(machine, members=[0, 1])
    assert sorted(ctx.nodes) == [0]
    with pytest.raises(ConfigurationError):
        ctx.node_state(machine.task(5))


def test_context_rejects_bad_members():
    machine = make_machine()
    with pytest.raises(ConfigurationError):
        SRMContext(machine, members=[])
    with pytest.raises(Exception):
        SRMContext(machine, members=[99])


def test_check_member():
    machine = make_machine()
    ctx = SRMContext(machine, members=[0, 4])
    assert ctx.check_member(4) == 4
    with pytest.raises(ConfigurationError):
        ctx.check_member(1)


def test_bcast_plan_cached_and_counters_placed():
    machine = make_machine()
    ctx = SRMContext(machine)
    plan = ctx.bcast_plan(0)
    assert ctx.bcast_plan(0) is plan
    # One edge: node 1 is the only child node.
    assert sorted(plan.edges) == [1]
    edge = plan.edges[1]
    # Free counters start at 1 per slot (both buffers free, Fig. 4).
    assert edge.free[0].value == 1 and edge.free[1].value == 1
    assert edge.arrival[0].value == 0


def test_bcast_plan_inter_roles():
    machine = make_machine()
    ctx = SRMContext(machine)
    plan = ctx.bcast_plan(0)
    assert plan.inter_children(0) == [4]
    assert plan.inter_parent(4) == 0
    assert plan.inter_parent(0) is None
    assert plan.inter_children(3) == []  # non-representative


def test_reduce_plan_staging_at_parent():
    machine = make_machine()
    ctx = SRMContext(machine)
    plan = ctx.reduce_plan(0)
    # Child rank 4 stages into node 0's memory.
    assert 4 in plan.staging
    assert plan.arrival[4][0].value == 0
    assert plan.free[4][0].value == 1


def test_allreduce_plan_positions_and_fold():
    machine = Machine(ClusterSpec(nodes=5, tasks_per_node=2))
    ctx = SRMContext(machine)
    plan = ctx.allreduce_plan()
    assert plan.node_order == [0, 1, 2, 3, 4]
    assert plan.group_size == 4
    assert plan.rounds == 2
    assert plan.fold_partner == {4: 0}
    assert plan.masters == {n: 2 * n for n in range(5)}


def test_allreduce_plan_group_subset():
    machine = make_machine(nodes=4, tasks=2)
    ctx = SRMContext(machine, members=[2, 3, 6, 7])  # nodes 1 and 3
    plan = ctx.allreduce_plan()
    assert plan.node_order == [1, 3]
    assert plan.masters == {1: 2, 3: 6}
    assert plan.rounds == 1
    assert plan.fold_partner == {}


def test_barrier_plan_rounds():
    machine = Machine(ClusterSpec(nodes=6, tasks_per_node=1))
    ctx = SRMContext(machine)
    plan = ctx.barrier_plan()
    assert plan.rounds == 3  # ceil(log2 6)
    assert len(plan.counters) == 6
    assert all(len(counters) == 3 for counters in plan.counters.values())


def test_validate_message():
    machine = make_machine()
    ctx = SRMContext(machine)
    ctx.validate_message(0)
    ctx.validate_message(10_000_000)
    with pytest.raises(ConfigurationError):
        ctx.validate_message(-1)
