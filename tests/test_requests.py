"""The request layer: nonblocking one-shots and persistent plans.

Covers the contract :mod:`repro.core.requests` promises:

* blocking facade == ``start(inline=True)`` + ``wait()`` (byte-identical —
  the regress gate holds the global version of this; here we check the local
  request semantics);
* nonblocking requests (``ibcast`` et al.) overlap across disjoint groups
  and complete with correct data;
* persistent plans pin their dispatch decision once (``persistent=True`` in
  the telemetry), replay correctly, and allow multiple in-flight starts;
* validation is a single choke point that raises at ``start()``/plan init,
  never mid-schedule;
* a deadlock inside ``request.wait()`` names the outstanding request;
* property: any interleaving of ``start()``/``wait()`` across independent
  communicators produces bytes identical to the all-blocking run.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SRM, CollectiveRequest, PersistentCollective
from repro.errors import ConfigurationError, DeadlockError
from repro.machine import ClusterSpec, Machine
from repro.mpi.ops import SUM


def make_machine(nodes=2, procs=2):
    return Machine(ClusterSpec(nodes=nodes, tasks_per_node=procs))


# ---------------------------------------------------------------------------
# nonblocking one-shots
# ---------------------------------------------------------------------------


def test_ibcast_completes_with_correct_data_and_state():
    machine = make_machine()
    srm = SRM(machine)
    seen = {}

    def program(task):
        data = np.arange(32.0) if task.rank == 0 else np.zeros(32)
        request = srm.ibcast(task, data, root=0)
        assert isinstance(request, CollectiveRequest)
        assert not request.test()
        value = yield from request.wait()
        assert request.test() and request.completed
        seen[task.rank] = data.copy()

    machine.launch(program)
    for rank in range(4):
        assert np.array_equal(seen[rank], np.arange(32.0))


def test_wait_is_idempotent_and_test_polls():
    machine = make_machine()
    srm = SRM(machine)

    def program(task):
        src = np.full(4, float(task.rank + 1))
        dst = np.zeros(4)
        request = srm.iallreduce(task, src, dst, SUM)
        yield from request.wait()
        first = dst.copy()
        yield from request.wait()  # second wait returns immediately
        assert np.array_equal(dst, first)

    machine.launch(program)


def test_requests_overlap_across_disjoint_groups():
    """Independent communicators progress concurrently: both groups' results
    are correct, and neither blocks the other."""
    machine = make_machine()
    a = SRM(machine, group=[0, 1])
    b = SRM(machine, group=[2, 3])
    results = {}

    def program(task):
        if task.rank in a.members:
            data = np.arange(64.0) if task.rank == 0 else np.zeros(64)
            request = a.ibcast(task, data, root=0)
        else:
            src = np.full(8, float(task.rank))
            data = np.zeros(8)
            request = b.iallreduce(task, src, data, SUM)
        yield from request.wait()
        results[task.rank] = data.copy()

    machine.launch(program)
    assert np.array_equal(results[1], np.arange(64.0))
    assert np.array_equal(results[2], np.full(8, 5.0))


def test_same_context_requests_serialize_in_started_order():
    """Two nonblocking broadcasts on one communicator: started order is
    completion order at each rank (the MPI per-communicator guarantee)."""
    machine = make_machine()
    srm = SRM(machine)
    order = []

    def program(task):
        first = np.full(16, 1.0) if task.rank == 0 else np.zeros(16)
        second = np.full(16, 2.0) if task.rank == 0 else np.zeros(16)
        r1 = srm.ibcast(task, first, root=0)
        r2 = srm.ibcast(task, second, root=0)
        yield from r2.wait()  # waiting the later request completes both
        assert r1.completed
        yield from r1.wait()
        if task.rank == 3:
            order.append((first[0], second[0]))

    machine.launch(program)
    assert order == [(1.0, 2.0)]


# ---------------------------------------------------------------------------
# persistent plans
# ---------------------------------------------------------------------------


def test_persistent_plan_replays_and_pins_decision():
    machine = make_machine()
    srm = SRM(machine)
    rounds = 5
    seen = []

    def program(task):
        data = np.zeros(32)
        plan = srm.plan_broadcast(task, data, root=0)
        assert isinstance(plan, PersistentCollective)
        assert plan.decision is not None and plan.decision.op == "broadcast"
        for i in range(rounds):
            if task.rank == 0:
                data[:] = i + 1
            request = plan.start()
            yield from request.wait()
            if task.rank == 3:
                seen.append(data[0])
        assert plan.starts == rounds

    machine.launch(program)
    assert seen == [1.0, 2.0, 3.0, 4.0, 5.0]
    record = machine.obs.decisions.find("broadcast", 32 * 8)
    assert record is not None and record.persistent
    assert record.to_dict()["persistent"] is True


def test_blocking_calls_leave_persistent_flag_unset():
    machine = make_machine()
    srm = SRM(machine)

    def program(task):
        data = np.zeros(32)
        yield from srm.broadcast(task, data, root=0)

    machine.launch(program)
    record = machine.obs.decisions.find("broadcast", 32 * 8)
    assert record is not None and not record.persistent


def test_two_starts_in_flight_on_one_plan():
    machine = make_machine()
    srm = SRM(machine)

    def program(task):
        data = np.zeros(16)
        if task.rank == 0:
            data[:] = 7.0
        plan = srm.plan_broadcast(task, data, root=0)
        r1 = plan.start()
        r2 = plan.start()
        assert r1.invocation.sequence != r2.invocation.sequence
        yield from r1.wait()
        yield from r2.wait()
        assert data[0] == 7.0

    machine.launch(program)


def test_persistent_allreduce_and_barrier_plans():
    machine = make_machine()
    srm = SRM(machine)

    def program(task):
        src = np.full(8, float(task.rank + 1))
        dst = np.zeros(8)
        summed = srm.plan_allreduce(task, src, dst, SUM)
        fence = srm.plan_barrier(task)
        for _ in range(3):
            yield from summed.start().wait()
            yield from fence.start().wait()
            assert np.array_equal(dst, np.full(8, 10.0))

    machine.launch(program)


def test_prepare_start_reserves_without_running():
    """The selfbench's timed path: reservation happens eagerly at
    prepare_start, the body generator is not consumed."""
    machine = make_machine()
    srm = SRM(machine)
    task = machine.task(0)
    data = np.zeros(1024, dtype=np.uint8)
    plan = srm.plan_broadcast(task, data, root=0)
    first, _body1 = plan.prepare_start()
    second, _body2 = plan.prepare_start()
    assert second.bcast_base > first.bcast_base  # windows actually claimed
    assert second.sequence == first.sequence + 1


# ---------------------------------------------------------------------------
# validation choke point
# ---------------------------------------------------------------------------


def test_errors_raise_at_start_never_mid_schedule():
    machine = make_machine()
    srm = SRM(machine, group=[0, 1])
    task = machine.task(0)
    data = np.zeros(8)
    with pytest.raises(ConfigurationError):
        srm.ibcast(task, data, root=3)  # root outside the group
    with pytest.raises(ConfigurationError):
        srm.plan_broadcast(task, data, root=3)
    with pytest.raises(ConfigurationError):
        srm.ibarrier(machine.task(2))  # caller outside the group
    with pytest.raises(ValueError):
        srm.plan_allreduce(task, np.zeros(8), np.zeros(4), SUM)
    with pytest.raises(ValueError):
        srm.ireduce(task, data, None, SUM, root=0)  # root needs a dst
    # The engine never ran: nothing was scheduled before the raise.
    assert machine.engine.events_processed == 0


def test_blocking_facade_validates_through_the_same_choke_point():
    machine = make_machine()
    srm = SRM(machine, group=[0, 1])

    def program(task):
        with pytest.raises(ConfigurationError):
            yield from srm.broadcast(task, np.zeros(8), root=3)
        return
        yield

    machine.launch(program, ranks=[0])


# ---------------------------------------------------------------------------
# deadlock attribution
# ---------------------------------------------------------------------------


def test_deadlock_inside_wait_names_the_outstanding_request():
    """Only rank 1 enters the broadcast — the root never does — so its wait
    starves, and the error names the op, root, invocation sequence, and rank."""
    machine = make_machine()
    srm = SRM(machine)

    def program(task):
        data = np.zeros(8)
        request = srm.ibcast(task, data, root=0)
        yield from request.wait()

    with pytest.raises(DeadlockError) as excinfo:
        machine.launch(program, ranks=[1])
    message = str(excinfo.value)
    assert "in wait() on request broadcast(root=0)#0 at rank 1" in message


# ---------------------------------------------------------------------------
# property: interleaving-freedom across independent communicators
# ---------------------------------------------------------------------------


@given(
    defer=st.lists(st.booleans(), min_size=4, max_size=4),
    swap=st.booleans(),
    rounds=st.integers(1, 3),
)
@settings(max_examples=25, deadline=None)
def test_any_interleaving_matches_blocking_bytes(defer, swap, rounds):
    """Across two disjoint communicators on one machine, any mix of
    deferred waits and per-group op order produces byte-identical results
    to the all-blocking program."""

    def run(blocking):
        machine = make_machine()
        groups = (SRM(machine, group=[0, 1]), SRM(machine, group=[2, 3]))
        buffers = {
            rank: (np.full(24, float(rank + 1)), np.zeros(24)) for rank in range(4)
        }

        def program(task):
            srm = groups[0] if task.rank < 2 else groups[1]
            root = srm.members[0]
            src, dst = buffers[task.rank]
            for round_index in range(rounds):
                ops = ["bcast", "allreduce"]
                if swap and task.rank >= 2:
                    ops.reverse()
                for op in ops:
                    if op == "bcast":
                        if blocking:
                            yield from srm.broadcast(task, dst, root=root)
                            continue
                        request = srm.ibcast(task, dst, root=root)
                    else:
                        if blocking:
                            yield from srm.allreduce(task, src, dst, SUM)
                            continue
                        request = srm.iallreduce(task, src, dst, SUM)
                    if not (blocking or defer[task.rank]):
                        yield from request.wait()
                if not blocking and defer[task.rank]:
                    yield from request.wait()  # chain completes predecessors

        machine.launch(program)
        return np.concatenate([buffers[rank][1] for rank in range(4)]).tobytes()

    assert run(blocking=False) == run(blocking=True)
