"""Compiled-schedule replay: trace-record persistent windows, replay them.

The contract under test (:mod:`repro.core.replay`):

* a persistent plan's repeated ``start()``/``run()`` windows are recorded
  once and then replayed by the vectorized kernel — with buffers, engine
  clock, and event outcomes **byte-identical** to re-driving the slow path
  (the differential property test randomizes op, dtype, size, shape, root,
  and invalidation interleavings);
* ``replay.hits`` / ``replay.misses`` count the cache decisions, and
  ``SRMConfig(compiled_replay=False)`` — the ``--no-replay`` escape hatch —
  keeps the engine untouched;
* ``rebind()`` invalidates cached traces, so post-rebind windows re-record
  against the new buffers instead of replaying stale views;
* a :class:`~repro.errors.DeadlockError` raised during a *recorded* window
  (some ranks never started) must not leave a half-written trace cached:
  the next window records from scratch on the slow path and then replays;
* an exception mid-recorded-window leaves an armed recording behind; the
  next flush discards it and restores the tapped instruments.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SRM, SRMConfig
from repro.core.replay import _HistogramTape
from repro.errors import DeadlockError
from repro.machine import ClusterSpec, Machine
from repro.mpi.ops import SUM


def make_pair(nodes=2, procs=2):
    """Two identical machines: compiled replay on and off."""
    on = Machine(ClusterSpec(nodes=nodes, tasks_per_node=procs))
    off = Machine(ClusterSpec(nodes=nodes, tasks_per_node=procs))
    return (
        (on, SRM(on, config=SRMConfig(compiled_replay=True))),
        (off, SRM(off, config=SRMConfig(compiled_replay=False))),
    )


def drive_window(machine, plans):
    """One window: start every rank's plan while idle, run to quiescence."""
    requests = [plan.start() for plan in plans]
    machine.engine.run()
    for request in requests:
        assert request.completed
    return requests


# ---------------------------------------------------------------------------
# differential property: replayed windows are byte-identical to the slow path
# ---------------------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(
    op=st.sampled_from(["broadcast", "reduce", "allreduce", "barrier"]),
    dtype=st.sampled_from([np.uint8, np.float64]),
    nbytes=st.sampled_from([16, 512, 4096]),
    procs=st.integers(min_value=2, max_value=3),
    root_seed=st.integers(min_value=0, max_value=7),
    invalidate_at=st.sampled_from([None, 2]),
    data=st.data(),
)
def test_replay_windows_match_slow_path(
    op, dtype, nbytes, procs, root_seed, invalidate_at, data
):
    """N windows on a replay machine == N windows on a slow-path twin.

    Every window rewrites the contributing payloads with fresh random bytes
    (same stream on both machines), so a replay that short-circuits the data
    movement — instead of re-executing it against the new input — cannot
    pass.  ``invalidate_at`` injects a mid-sequence ``invalidate()`` on both
    machines to check mixed record/replay interleavings.
    """
    total = 2 * procs
    root = root_seed % total
    count = max(1, nbytes // dtype().itemsize)
    windows = 5

    pair = make_pair(procs=procs)
    sides = []
    for machine, srm in pair:
        buffers = {r: np.zeros(count, dtype=dtype) for r in range(total)}
        outs = {r: np.zeros(count, dtype=np.float64) for r in range(total)}
        sources = {r: np.zeros(count, dtype=np.float64) for r in range(total)}
        if op == "broadcast":
            plans = [
                srm.plan_broadcast(machine.task(r), buffers[r], root=root)
                for r in range(total)
            ]
        elif op == "reduce":
            plans = [
                srm.plan_reduce(
                    machine.task(r),
                    sources[r],
                    outs[root] if r == root else None,
                    SUM,
                    root=root,
                )
                for r in range(total)
            ]
        elif op == "allreduce":
            plans = [
                srm.plan_allreduce(machine.task(r), sources[r], outs[r], SUM)
                for r in range(total)
            ]
        else:
            plans = [srm.plan_barrier(machine.task(r)) for r in range(total)]
        sides.append((machine, plans, buffers, sources, outs))

    for window in range(windows):
        if op == "broadcast":
            payload = data.draw(
                st.binary(min_size=count * dtype().itemsize, max_size=count * dtype().itemsize),
                label=f"window{window}",
            )
            fresh = np.frombuffer(payload, dtype=dtype).copy()
        elif op in ("reduce", "allreduce"):
            fills = data.draw(
                st.lists(
                    st.floats(min_value=-8, max_value=8, allow_nan=False),
                    min_size=total,
                    max_size=total,
                ),
                label=f"window{window}",
            )
        for machine, plans, buffers, sources, outs in sides:
            if invalidate_at is not None and window == invalidate_at:
                for plan in plans:
                    plan.invalidate()
            if op == "broadcast":
                buffers[root][:] = fresh
            elif op in ("reduce", "allreduce"):
                for r in range(total):
                    sources[r][:] = fills[r]
            drive_window(machine, plans)
        (_, _, bufs_on, _, outs_on), (_, _, bufs_off, _, outs_off) = sides
        for r in range(total):
            assert bufs_on[r].tobytes() == bufs_off[r].tobytes(), (
                f"window {window}: broadcast buffer of rank {r} diverged"
            )
            assert outs_on[r].tobytes() == outs_off[r].tobytes(), (
                f"window {window}: result buffer of rank {r} diverged"
            )

    # Identical simulated clocks: replay reproduced every event's timing.
    engine_on, engine_off = sides[0][0].engine, sides[1][0].engine
    assert engine_on.now == pytest.approx(engine_off.now, abs=1e-9)
    manager = engine_on.trace
    assert manager is not None and manager.hit_count > 0
    assert engine_off.trace is None


# ---------------------------------------------------------------------------
# cache bookkeeping: counters, escape hatch, invalidation
# ---------------------------------------------------------------------------


def test_replay_hit_and_miss_counters():
    (machine, srm), _ = make_pair()
    total = machine.spec.total_tasks
    buffers = {r: np.zeros(256, dtype=np.uint8) for r in range(total)}
    plans = [srm.plan_broadcast(machine.task(r), buffers[r], root=0) for r in range(total)]
    for window in range(8):
        buffers[0][:] = window + 1
        drive_window(machine, plans)
    manager = machine.engine.trace
    assert manager.hit_count >= 4
    assert manager.hit_count + manager.miss_count == 8
    summary = machine.obs.metrics.to_dict()
    assert summary["replay.hits"]["value"] == manager.hit_count
    assert summary["replay.misses"]["value"] == manager.miss_count


def test_no_replay_config_never_installs_the_manager():
    machine = Machine(ClusterSpec(nodes=2, tasks_per_node=2))
    srm = SRM(machine, config=SRMConfig(compiled_replay=False))
    buffer = np.ones(64, dtype=np.uint8)
    plans = [
        srm.plan_broadcast(machine.task(r), np.zeros(64, dtype=np.uint8) if r else buffer, root=0)
        for r in range(4)
    ]
    for _ in range(4):
        drive_window(machine, plans)
    assert machine.engine.trace is None
    assert "replay.hits" not in machine.obs.metrics.to_dict()


def test_rebind_invalidates_cached_traces():
    (machine, srm), _ = make_pair()
    total = machine.spec.total_tasks
    buffers = {r: np.zeros(128, dtype=np.uint8) for r in range(total)}
    plans = [srm.plan_broadcast(machine.task(r), buffers[r], root=0) for r in range(total)]
    for window in range(6):
        buffers[0][:] = window + 1
        drive_window(machine, plans)
    manager = machine.engine.trace
    assert manager.hit_count > 0
    assert manager._traces

    fresh = {r: np.zeros(128, dtype=np.uint8) for r in range(total)}
    for rank, plan in enumerate(plans):
        plan.rebind(fresh[rank])
    # Every cached trace referenced the rebound plans: all dropped.
    assert not manager._traces

    for window in range(6):
        fresh[0][:] = 100 + window
        drive_window(machine, plans)
        for r in range(total):
            assert np.all(fresh[r] == 100 + window), f"rank {r} missed the rebound payload"
    # The rebound windows re-recorded and then replayed again.
    assert manager._traces


# ---------------------------------------------------------------------------
# failure paths: half-written traces must never survive
# ---------------------------------------------------------------------------


def _hub_tapes_restored(machine):
    """True when no hub instrument is still a recording proxy."""
    return not any(
        isinstance(value, _HistogramTape) for value in vars(machine.obs).values()
    )


def test_deadlock_during_recording_caches_nothing_and_recovers():
    """A recorded window that deadlocks leaves no half-trace; later windows
    record from scratch on the slow path and then replay, byte-identical to
    the slow-path twin driven through the same (partial) start sequence."""
    (machine, srm), (twin, twin_srm) = make_pair()
    results = {}
    for label, (mach, facade) in (("on", (machine, srm)), ("off", (twin, twin_srm))):
        total = mach.spec.total_tasks
        buffers = {r: np.zeros(192, dtype=np.uint8) for r in range(total)}
        plans = [
            facade.plan_broadcast(mach.task(r), buffers[r], root=0) for r in range(total)
        ]
        buffers[0][:] = 9
        # Window 0: only non-root rank 1 starts — it blocks on a READY flag
        # the absent root never sets, so the window can never complete.
        partial = plans[1].start()
        if label == "on":
            with pytest.raises(DeadlockError):
                mach.engine.run()
            manager = mach.engine.trace
            assert manager._traces == {}
            assert manager.recording is None
            assert _hub_tapes_restored(mach)
        else:
            mach.engine.run()  # the slow path just leaves the request pending
        assert not partial.completed
        # Recovery window: the remaining ranks join rank 1's outstanding start.
        for rank, plan in enumerate(plans):
            if rank != 1:
                plan.start()
        mach.engine.run()
        assert partial.completed
        # Healthy full windows afterwards: record, then replay.
        for window in range(6):
            buffers[0][:] = 20 + window
            drive_window(mach, plans)
        results[label] = {r: buffers[r].tobytes() for r in range(total)}
    assert results["on"] == results["off"]
    assert machine.engine.trace.hit_count > 0
    assert machine.engine.now == pytest.approx(twin.engine.now, abs=1e-9)


def test_exception_mid_recording_discards_the_stale_trace():
    """An exception during a recorded window leaves an armed recording; the
    next flush must discard it, restore the tapped instruments, and record
    the fresh window instead of caching torn state."""
    from repro.shmem.flags import SharedFlag

    (machine, srm), _ = make_pair()
    total = machine.spec.total_tasks
    buffers = {r: np.zeros(96, dtype=np.uint8) for r in range(total)}
    plans = [srm.plan_broadcast(machine.task(r), buffers[r], root=0) for r in range(total)]

    original = SharedFlag.store
    calls = {"n": 0}

    def exploding(self, value, writer_rank=None):
        calls["n"] += 1
        if calls["n"] == 3:
            raise RuntimeError("injected mid-window fault")
        return original(self, value, writer_rank=writer_rank)

    SharedFlag.store = exploding
    try:
        buffers[0][:] = 1
        for plan in plans:
            plan.start()
        with pytest.raises(RuntimeError, match="injected mid-window fault"):
            machine.engine.run()
    finally:
        SharedFlag.store = original

    manager = machine.engine.trace
    assert manager.recording is not None  # armed, uncommitted

    # The wedged context is abandoned; a fresh facade on the same machine
    # must flush the stale recording and then work normally.
    fresh_srm = SRM(machine)
    fresh = {r: np.zeros(96, dtype=np.uint8) for r in range(total)}
    fresh_plans = [
        fresh_srm.plan_broadcast(machine.task(r), fresh[r], root=0) for r in range(total)
    ]
    hits_before = manager.hit_count
    for window in range(6):
        fresh[0][:] = 30 + window
        drive_window(machine, fresh_plans)
        for r in range(total):
            assert np.all(fresh[r] == 30 + window)
    assert manager.recording is None
    assert _hub_tapes_restored(machine)
    assert manager.hit_count > hits_before
