"""Tests for ``python -m repro verify``: report schema, exit codes, smoke."""

import json

import pytest

from repro.cli import main
from repro.errors import VerificationError
from repro.verify import build_report, load_report, run_verify, write_report
from repro.verify.report import (
    CELL_KEYS,
    ENVELOPE_KEYS,
    REPORT_SCHEMA,
    SCHEMA_VERSION,
    VERIFY_BODY_KEYS,
)
from repro.verify.runner import Cell

ONE_CELL = [Cell(2, 2, "broadcast", "small", 2048)]


# ---------------------------------------------------------------------------
# golden report schema
# ---------------------------------------------------------------------------


def test_report_carries_full_golden_schema(tmp_path):
    body = run_verify(ONE_CELL, schedules=4, seed=0)
    report = build_report(body, label="test")
    path = tmp_path / "report.json"
    write_report(str(path), report)
    loaded = load_report(str(path))

    assert sorted(loaded) == sorted(ENVELOPE_KEYS)
    assert loaded["schema"] == REPORT_SCHEMA
    assert loaded["schema_version"] == SCHEMA_VERSION
    assert loaded["label"] == "test"
    for key in VERIFY_BODY_KEYS:
        assert key in loaded["body"], key
    for cell_entry in loaded["body"]["cells"]:
        assert sorted(cell_entry) == sorted(CELL_KEYS)
    totals = loaded["body"]["totals"]
    assert totals["cells"] == 1
    assert totals["schedules"] >= 4
    assert loaded["body"]["ok"] is True


def test_report_serialization_is_byte_stable(tmp_path):
    body = run_verify(ONE_CELL, schedules=4, seed=0)
    a, b = tmp_path / "a.json", tmp_path / "b.json"
    write_report(str(a), build_report(body, label="x"))
    write_report(str(b), build_report(run_verify(ONE_CELL, schedules=4, seed=0), label="x"))
    assert a.read_bytes() == b.read_bytes()


def test_load_report_rejects_wrong_schema(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"schema": "something-else", "schema_version": 1}))
    with pytest.raises(VerificationError):
        load_report(str(path))
    path.write_text(json.dumps({"schema": REPORT_SCHEMA, "schema_version": 999}))
    with pytest.raises(VerificationError):
        load_report(str(path))


def test_report_counts_schedules_and_violations():
    body = run_verify(ONE_CELL, schedules=5, seed=2)
    entry = body["cells"][0]
    assert entry["schedules_explored"] == entry["distinct_signatures"] >= 5
    assert body["totals"]["schedules"] == entry["schedules_explored"]
    assert body["totals"]["violations"] == 0


# ---------------------------------------------------------------------------
# CLI behaviour
# ---------------------------------------------------------------------------


def test_cli_verify_quick_writes_report_and_exits_zero(tmp_path, capsys):
    out = tmp_path / "verify.json"
    code = main(
        [
            "verify",
            "--quick",
            "--quiet",
            "--schedules",
            "4",
            "--json-out",
            str(out),
        ]
    )
    assert code == 0
    report = load_report(str(out))
    assert report["body"]["ok"] is True
    assert report["body"]["totals"]["violations"] == 0
    assert "cells ok" in capsys.readouterr().out


def test_cli_verify_explicit_grid_and_dfs(capsys):
    code = main(
        [
            "verify",
            "--nodes",
            "2",
            "--procs",
            "2",
            "--ops",
            "barrier",
            "--schedules",
            "4",
            "--explorer",
            "dfs",
            "--no-faults",
            "--quiet",
        ]
    )
    assert code == 0
    assert "(ok)" in capsys.readouterr().out


def test_cli_verify_rejects_unknown_operation(capsys):
    assert main(["verify", "--ops", "alltoallv", "--quiet"]) == 2


def test_cli_verify_smoke_passes_and_reports(tmp_path, capsys):
    out = tmp_path / "smoke.json"
    code = main(["verify", "--smoke", "--quiet", "--json-out", str(out)])
    assert code == 0
    report = load_report(str(out))
    assert report["body"]["mode"] == "mutation-smoke"
    assert report["body"]["ok"] is True
    detected = [m for m in report["body"]["mutations"] if m["detected"]]
    assert len(detected) == len(report["body"]["mutations"]) >= 4
    assert "4/4 injected bugs detected" in capsys.readouterr().out


def test_cli_verify_progress_lines(capsys):
    code = main(
        ["verify", "--nodes", "2", "--procs", "2", "--ops", "barrier", "--schedules", "3"]
    )
    assert code == 0
    out = capsys.readouterr().out
    # One blocking cell, the two overlap (plan2/plans) cells, and the
    # compiled-replay windows cell (barrier has no buffers to rebind).
    assert "verify [1/4] barrier/n2xp2" in out
    assert "/plan2" in out and "/plans" in out and "/replay" in out
