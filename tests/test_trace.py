"""Tests for the tracing / timeline module."""

import numpy as np
import pytest

from repro.bench import build
from repro.bench.trace import Tracer, assign_glyphs
from repro.machine import ClusterSpec
from repro.mpi.ops import SUM


def traced_machine(name="srm", nodes=2, tasks=2):
    machine, stack = build(name, ClusterSpec(nodes=nodes, tasks_per_node=tasks))
    tracer = Tracer(machine)
    return machine, tracer, tracer.wrap(stack)


def run_broadcast(machine, traced, nbytes=1024, repeats=1):
    total = machine.spec.total_tasks
    buffers = {r: np.zeros(nbytes, np.uint8) for r in range(total)}
    buffers[0][:] = 1

    def program(task):
        for _ in range(repeats):
            yield from traced.broadcast(task, buffers[task.rank], root=0)

    machine.launch(program)
    return buffers


def test_spans_cover_every_rank():
    machine, tracer, traced = traced_machine()
    run_broadcast(machine, traced)
    assert {span.rank for span in tracer.spans} == {0, 1, 2, 3}
    assert all(span.operation == "broadcast" for span in tracer.spans)


def test_span_times_ordered_and_positive():
    machine, tracer, traced = traced_machine()
    run_broadcast(machine, traced)
    for span in tracer.spans:
        assert span.end >= span.start
        assert span.duration >= 0


def test_call_index_increments_per_repeat():
    machine, tracer, traced = traced_machine()
    run_broadcast(machine, traced, repeats=3)
    indices = sorted(s.call_index for s in tracer.calls("broadcast") if s.rank == 0)
    assert indices == [0, 1, 2]


def test_makespan_matches_engine_span():
    machine, tracer, traced = traced_machine()
    run_broadcast(machine, traced)
    assert tracer.makespan("broadcast") == pytest.approx(machine.now, rel=0.01)


def test_makespan_unknown_call_raises():
    machine, tracer, traced = traced_machine()
    with pytest.raises(ValueError):
        tracer.makespan("broadcast")


def test_totals_count_substrate_activity():
    machine, tracer, traced = traced_machine()
    run_broadcast(machine, traced, nbytes=2048)
    totals = tracer.totals()
    assert totals["copies"] > 0
    assert totals["bytes_copied"] >= 2048
    assert totals["puts"] >= 1  # one inter-node edge
    assert totals["mpi_sends"] == 0  # SRM never touches MPI p2p


def test_mpi_stack_records_sends_not_puts():
    machine, tracer, traced = traced_machine(name="ibm")
    run_broadcast(machine, traced)
    totals = tracer.totals()
    assert totals["mpi_sends"] >= 3
    assert totals["puts"] == 0


def test_all_operations_traceable():
    machine, tracer, traced = traced_machine()
    total = machine.spec.total_tasks
    sources = {r: np.full(16, 1.0) for r in range(total)}
    outs = {r: np.zeros(16) for r in range(total)}
    destination = np.zeros(16)

    def program(task):
        yield from traced.barrier(task)
        dst = destination if task.rank == 0 else None
        yield from traced.reduce(task, sources[task.rank], dst, SUM, root=0)
        yield from traced.allreduce(task, sources[task.rank], outs[task.rank], SUM)

    machine.launch(program)
    operations = {span.operation for span in tracer.spans}
    assert operations == {"barrier", "reduce", "allreduce"}
    assert np.all(destination == total)


def test_timeline_renders_lanes():
    machine, tracer, traced = traced_machine()
    run_broadcast(machine, traced)
    art = tracer.timeline("broadcast", width=40)
    lines = art.splitlines()
    assert lines[0].startswith("t = ")
    assert sum(1 for line in lines if line.startswith("rank")) == 4
    assert "B" in art  # broadcast glyph


def test_glyphs_are_unique_per_operation():
    # The naive first-letter scheme collides on broadcast/barrier.
    glyphs = assign_glyphs(["broadcast", "barrier", "reduce", "allreduce"])
    assert len(set(glyphs.values())) == 4
    assert glyphs["barrier"] != glyphs["broadcast"]


def test_glyphs_fall_back_to_digits():
    # Operations sharing every letter exhaust the name-based candidates.
    glyphs = assign_glyphs(["ab", "ba", "aab", "abb"])
    assert len(set(glyphs.values())) == 4


def test_timeline_distinguishes_broadcast_and_barrier():
    machine, tracer, traced = traced_machine()
    buffers = {r: np.zeros(512, np.uint8) for r in range(4)}

    def program(task):
        yield from traced.barrier(task)
        yield from traced.broadcast(task, buffers[task.rank], root=0)

    machine.launch(program)
    art = tracer.timeline()
    legend = art.splitlines()[-1]
    assert legend.startswith("legend:")
    assert "=barrier" in legend and "=broadcast" in legend
    barrier_glyph = legend.split("=barrier")[0].split()[-1]
    broadcast_glyph = legend.split("=broadcast")[0].split()[-1]
    assert barrier_glyph != broadcast_glyph
    lanes = [line for line in art.splitlines() if line.startswith("rank")]
    assert any(barrier_glyph in lane and broadcast_glyph in lane for lane in lanes)


def test_timeline_empty():
    machine, tracer, traced = traced_machine()
    assert tracer.timeline() == "(no spans recorded)"


def test_timeline_lane_cap():
    machine, tracer, traced = traced_machine(nodes=2, tasks=4)
    run_broadcast(machine, traced)
    art = tracer.timeline("broadcast", width=30, max_lanes=3)
    assert "more lanes" in art


def test_chrome_trace_export():
    import json

    machine, tracer, traced = traced_machine()
    run_broadcast(machine, traced, repeats=2)
    events = tracer.to_chrome_trace()
    assert len(events) == len(tracer.spans)
    first = events[0]
    assert first["ph"] == "X"
    assert first["tid"] in range(4)
    assert first["dur"] >= 0
    assert "copies" in first["args"]
    json.dumps(events)  # must be serializable
