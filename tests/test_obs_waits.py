"""Tests for wait-state attribution (repro.obs.waits).

Two layers:

* **decision rules** — synthetic spans/flows/timelines injected into a fresh
  machine's recorder exercise each classification branch in isolation;
* **end-to-end coverage** — real collective runs must classify every blocked
  interval, including the ISSUE acceptance bar: no cell of the verify quick
  grid leaves more than 1% of its makespan ``unattributed``.
"""

import numpy as np
import pytest

from repro.bench.runner import build, looped_program, operation_body
from repro.core import SRMConfig
from repro.machine import ClusterSpec
from repro.mpi.ops import SUM
from repro.obs.critical import critical_path
from repro.obs.monitor import ResourceMonitor
from repro.obs.spans import PhaseSpan
from repro.obs.taxonomy import (
    FLOW_PUT_COUNTER,
    FLOW_RING_SIGNAL,
    RING_STEP,
    WAIT_BANDWIDTH_CONTENTION,
    WAIT_DETECTION_ONLY,
    WAIT_LATE_RELEASE,
    WAIT_LATE_SENDER,
    WAIT_RESOURCE_QUEUEING,
    WAIT_STATES,
    WAIT_UNATTRIBUTED,
)
from repro.obs.waits import WaitInterval, WaitReport, classify_waits
from repro.verify.runner import quick_grid


# ---------------------------------------------------------------------------
# Synthetic decision-rule tests
# ---------------------------------------------------------------------------


def synthetic_machine():
    """A built (never launched) machine: empty recorder, live monitor."""
    machine, _ = build("srm", ClusterSpec(nodes=2, tasks_per_node=2))
    return machine


def add_wait(machine, rank, start, end, phase="flag-wait", context=None):
    """Append a closed wait span (optionally nested under a context span)."""
    recorder = machine.obs.recorder
    parent = -1
    depth = 0
    if context is not None:
        outer = PhaseSpan(
            index=len(recorder.spans), rank=rank, name=context,
            start=start, depth=0, parent=-1, track=0,
        )
        outer.end = end
        recorder.spans.append(outer)
        parent = outer.index
        depth = 1
    span = PhaseSpan(
        index=len(recorder.spans), rank=rank, name=phase,
        start=start, depth=depth, parent=parent, track=0,
    )
    span.end = end
    recorder.spans.append(span)
    return span


def only_interval(machine, **kwargs):
    report = classify_waits(machine, start=0.0, end=100.0, **kwargs)
    assert len(report.intervals) == 1
    return report.intervals[0]


def test_late_release_when_transit_dominates():
    machine = synthetic_machine()
    add_wait(machine, 0, 10.0, 20.0, context=RING_STEP)
    # Issued exactly as the wait began, then ten seconds in flight.
    machine.obs.recorder.flow(FLOW_PUT_COUNTER, 2, 10.0, 0, 20.0)
    interval = only_interval(machine)
    assert interval.state == WAIT_LATE_RELEASE
    assert interval.context == RING_STEP
    assert interval.link_kind == FLOW_PUT_COUNTER
    assert interval.resource is None


def test_late_sender_when_issue_lag_dominates():
    machine = synthetic_machine()
    add_wait(machine, 1, 30.0, 40.0)
    # The peer only issued the release at t=38: eight seconds of issue lag
    # versus two of transit.
    machine.obs.recorder.flow(FLOW_PUT_COUNTER, 3, 38.0, 1, 40.0)
    interval = only_interval(machine)
    assert interval.state == WAIT_LATE_SENDER
    assert interval.context == "-"


def test_late_release_upgrades_to_bandwidth_contention():
    machine = synthetic_machine()
    add_wait(machine, 0, 10.0, 20.0, context=RING_STEP)
    machine.obs.recorder.flow(FLOW_PUT_COUNTER, 2, 10.0, 0, 20.0)
    # The destination node's memory bus was saturated by two sharers for the
    # whole flight window.
    bus = machine.obs.monitor.get("bus[0]")
    assert bus is not None
    bus.record(10.0, 2, 0, True)
    bus.record(20.0, 0, 0, False)
    interval = only_interval(machine)
    assert interval.state == WAIT_BANDWIDTH_CONTENTION
    assert interval.resource == "bus[0]"


def test_contention_below_threshold_stays_late_release():
    machine = synthetic_machine()
    add_wait(machine, 0, 10.0, 20.0)
    machine.obs.recorder.flow(FLOW_PUT_COUNTER, 2, 10.0, 0, 20.0)
    # Saturated for only 3 of the 10 in-flight seconds: under the 50% bar.
    bus = machine.obs.monitor.get("bus[0]")
    bus.record(10.0, 2, 0, True)
    bus.record(13.0, 0, 0, False)
    interval = only_interval(machine)
    assert interval.state == WAIT_LATE_RELEASE
    assert interval.resource is None


def test_satisfied_on_entry_is_detection_only():
    machine = synthetic_machine()
    add_wait(machine, 0, 50.0, 51.0)
    # The release landed before (at) the moment the wait began: the one
    # second is all spin-poll detection tail, nothing was late.
    machine.obs.recorder.flow(FLOW_PUT_COUNTER, 2, 49.0, 0, 50.0)
    interval = only_interval(machine)
    assert interval.state == WAIT_DETECTION_ONLY


def test_linkless_short_block_is_detection_only():
    machine = synthetic_machine()
    bound = machine.cost.flag_poll_interval
    add_wait(machine, 0, 5.0, 5.0 + bound)
    interval = only_interval(machine)
    assert interval.state == WAIT_DETECTION_ONLY


def test_linkless_block_behind_full_fifo_is_resource_queueing():
    machine = synthetic_machine()
    add_wait(machine, 2, 60.0, 70.0)
    dma = machine.obs.monitor.register("dma[1]", "fifo")
    dma.record(60.0, 1, 2, True)
    dma.record(70.0, 0, 0, False)
    interval = only_interval(machine)
    assert interval.state == WAIT_RESOURCE_QUEUEING
    assert interval.resource == "dma[1]"


def test_linkless_block_under_saturation_is_bandwidth_contention():
    machine = synthetic_machine()
    add_wait(machine, 3, 80.0, 90.0)  # rank 3 lives on node 1
    bus = machine.obs.monitor.get("bus[1]")
    bus.record(80.0, 2, 0, True)
    bus.record(90.0, 0, 0, False)
    interval = only_interval(machine)
    assert interval.state == WAIT_BANDWIDTH_CONTENTION
    assert interval.resource == "bus[1]"


def test_unexplained_block_stays_unattributed():
    machine = synthetic_machine()
    add_wait(machine, 1, 40.0, 45.0, phase="counter-wait")
    interval = only_interval(machine)
    assert interval.state == WAIT_UNATTRIBUTED
    report = classify_waits(machine, start=0.0, end=100.0)
    assert report.unattributed_fraction() == pytest.approx(0.05)


def test_window_clips_and_filters_spans():
    machine = synthetic_machine()
    add_wait(machine, 0, 10.0, 20.0)   # straddles the window end
    add_wait(machine, 1, 90.0, 95.0)   # entirely outside
    report = classify_waits(machine, start=0.0, end=15.0)
    assert len(report.intervals) == 1
    assert report.intervals[0].end == pytest.approx(15.0)


# ---------------------------------------------------------------------------
# WaitReport aggregation
# ---------------------------------------------------------------------------


def make_interval(rank=0, start=0.0, end=1.0, state=WAIT_LATE_SENDER,
                  context="ring-step", resource=None, critical=False):
    return WaitInterval(
        rank=rank, start=start, end=end, phase="flag-wait", context=context,
        state=state, resource=resource, on_critical_path=critical,
        link_kind=None,
    )


def test_report_aggregations():
    intervals = [
        make_interval(rank=0, start=0.0, end=3.0, critical=True),
        make_interval(rank=1, start=0.0, end=1.0,
                      state=WAIT_BANDWIDTH_CONTENTION, resource="bus[0]"),
        make_interval(rank=1, start=2.0, end=4.0, state=WAIT_UNATTRIBUTED,
                      context="-"),
    ]
    report = WaitReport(intervals, start=0.0, end=10.0)
    assert report.makespan == pytest.approx(10.0)
    assert report.total_blocked == pytest.approx(6.0)
    # Largest state first.
    assert list(report.by_state()) == [
        WAIT_LATE_SENDER, WAIT_UNATTRIBUTED, WAIT_BANDWIDTH_CONTENTION,
    ]
    assert report.by_state(critical_only=True) == {WAIT_LATE_SENDER: 3.0}
    # by_key is key-sorted; keys carry state|context|resource.
    keys = list(report.by_key())
    assert keys == sorted(keys)
    assert "bandwidth-contention|ring-step|bus[0]" in keys
    assert report.summary_us()["late-sender|ring-step|-"] == pytest.approx(3e6)
    assert report.by_rank_state()[(1, WAIT_UNATTRIBUTED)] == pytest.approx(2.0)
    assert report.unattributed_fraction() == pytest.approx(0.2)
    data = report.to_dict()
    assert data["intervals"] == 3
    assert data["blocked_us"] == pytest.approx(6e6)
    assert data["unattributed_fraction"] == pytest.approx(0.2)
    assert list(data["detail_us"]) == sorted(data["detail_us"])


def test_interval_key_and_duration():
    interval = make_interval(resource="nic_in[2]",
                             state=WAIT_BANDWIDTH_CONTENTION)
    assert interval.key() == "bandwidth-contention|ring-step|nic_in[2]"
    assert interval.duration == pytest.approx(1.0)


# ---------------------------------------------------------------------------
# End-to-end classification
# ---------------------------------------------------------------------------


def run_allreduce(nodes=2, tasks=2, nbytes=4096, srm_config=None):
    machine, stack = build(
        "srm", ClusterSpec(nodes=nodes, tasks_per_node=tasks),
        srm_config=srm_config,
    )
    total = machine.spec.total_tasks
    count = max(1, nbytes // 8)
    sources = {r: np.full(count, float(r + 1)) for r in range(total)}
    outs = {r: np.zeros(count) for r in range(total)}

    def program(task):
        yield from stack.allreduce(task, sources[task.rank], outs[task.rank], SUM)

    result = machine.launch(program)
    return machine, result


def classify(machine, result):
    path = critical_path(
        machine.obs.recorder, start=result.start_time, end=result.end_time
    )
    return classify_waits(
        machine, start=result.start_time, end=result.end_time, critical=path
    )


def test_allreduce_waits_fully_classified():
    machine, result = run_allreduce()
    report = classify(machine, result)
    assert report.intervals
    assert all(i.state in WAIT_STATES for i in report.intervals)
    assert all(result.start_time <= i.start <= i.end <= result.end_time
               for i in report.intervals)
    assert report.unattributed_fraction() <= 0.01
    # The critical path runs through at least one wait.
    assert any(i.on_critical_path for i in report.intervals)


def test_ring_allreduce_waits_are_attributed():
    machine, result = run_allreduce(
        nodes=4, tasks=2, nbytes=65536,
        srm_config=SRMConfig(allreduce_algorithm="ring"),
    )
    report = classify(machine, result)
    ring_waits = [i for i in report.intervals if i.context == RING_STEP]
    assert ring_waits, "the ring protocol should block inside ring-step"
    # The FIFO-chained arrival signals carry flow links, so ring waits are
    # attributable like direct counter puts.
    assert any(i.link_kind == FLOW_RING_SIGNAL for i in ring_waits)
    assert report.unattributed_fraction() <= 0.01


def test_classification_is_deterministic():
    first = classify(*run_allreduce()).to_dict()
    second = classify(*run_allreduce()).to_dict()
    assert first == second


def test_monitor_records_node_resources():
    machine, _ = run_allreduce()
    monitor = machine.obs.monitor
    assert isinstance(monitor, ResourceMonitor)
    for node in range(2):
        bus = monitor.get(f"bus[{node}]")
        assert bus is not None and bus.kind == "bandwidth"
        assert bus.samples, "SMP traffic must touch the node bus"
    dump = monitor.to_dict()
    assert list(dump) == sorted(dump)


def test_quick_grid_leaves_under_one_percent_unattributed():
    """ISSUE acceptance: every blocked interval in the verify quick grid is
    classified — unattributed stays under 1% of each cell's makespan."""
    for cell in quick_grid():
        spec = ClusterSpec(nodes=cell.nodes, tasks_per_node=cell.procs)
        machine, stack = build("srm", spec)
        body = operation_body(machine, stack, cell.operation, cell.nbytes)
        result = machine.launch(looped_program(body, 2))
        report = classify(machine, result)
        assert report.intervals, cell.cell_id
        fraction = report.unattributed_fraction()
        assert fraction <= 0.01, (
            f"{cell.cell_id}: {fraction:.2%} of the makespan unattributed"
        )
