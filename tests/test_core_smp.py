"""Unit tests for the intra-node SMP protocol primitives."""

import numpy as np
import pytest

from repro.core import SRM
from repro.core.smp.barrier import smp_barrier
from repro.core.smp.broadcast import (
    announce_slot,
    drain_slot,
    fill_slot,
    smp_broadcast_chunk,
    tree_smp_broadcast_chunk,
)
from repro.core.smp.reduce import smp_reduce_chunk
from repro.machine import ClusterSpec, Machine
from repro.mpi.ops import MAX, SUM
from repro.trees import binomial_tree, map_to_ranks


def node_setup(tasks=4):
    machine = Machine(ClusterSpec(nodes=1, tasks_per_node=tasks))
    srm = SRM(machine)
    return machine, srm, srm.ctx.nodes[0]


# ---------------------------------------------------------------------------
# flat broadcast primitives
# ---------------------------------------------------------------------------


def test_fill_announce_drain_cycle():
    machine, srm, state = node_setup(4)
    source = np.arange(256, dtype=np.uint8)
    sinks = {r: np.zeros(256, np.uint8) for r in (1, 2, 3)}

    def program(task):
        if task.rank == 0:
            yield from fill_slot(state, task, 0, source)
        else:
            yield from drain_slot(state, task, 0, sinks[task.rank])

    machine.launch(program)
    for sink in sinks.values():
        assert np.array_equal(sink, source)
    # All READY flags cleared after the drain.
    assert state.bcast_buf.flags(0).values() == [0, 0, 0, 0]


def test_fill_waits_for_buffer_free():
    machine, srm, state = node_setup(2)
    # Pre-set the reader's flag: the buffer is "still in use".
    state.bcast_buf.flags(0)[1].store(1)
    first_fill_time = {}

    def program(task):
        if task.rank == 0:
            yield from fill_slot(state, task, 0, np.ones(16, np.uint8))
            first_fill_time["t"] = task.engine.now
        else:
            yield from task.compute(50e-6)  # simulate a slow previous drain
            yield from state.bcast_buf.flags(0)[1].set(task, 0)

    machine.launch(program)
    assert first_fill_time["t"] >= 50e-6


def test_announce_sets_other_flags_only():
    machine, srm, state = node_setup(4)

    def program(task):
        yield from announce_slot(state, task, 1)

    machine.launch(program, ranks=[0])
    assert state.bcast_buf.flags(1).values() == [0, 1, 1, 1]


def test_smp_broadcast_chunk_single_task_noop():
    machine, srm, state = node_setup(1)

    def program(task):
        yield from smp_broadcast_chunk(state, task, True, np.ones(8, np.uint8), None)

    elapsed = machine.launch(program).elapsed
    assert elapsed == 0.0
    assert state.bcast_seq[0] == 1  # sequence still advances


def test_smp_broadcast_chunk_alternates_slots():
    machine, srm, state = node_setup(2)
    source = np.full(64, 3, np.uint8)
    sink = np.zeros(64, np.uint8)

    def program(task):
        for _ in range(4):
            if task.rank == 0:
                yield from smp_broadcast_chunk(state, task, True, source, None)
            else:
                yield from smp_broadcast_chunk(state, task, False, None, sink)

    machine.launch(program)
    assert state.bcast_buf.cursor == 0  # cursor untouched: seq-based parity
    assert state.bcast_seq == [4, 4]
    assert np.all(sink == 3)


# ---------------------------------------------------------------------------
# tree broadcast (ablation variant)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("tasks", [2, 4, 8, 16])
def test_tree_broadcast_delivers(tasks):
    machine, srm, state = node_setup(tasks)
    tree = map_to_ranks(binomial_tree(tasks), list(range(tasks)))
    source = np.arange(512, dtype=np.uint8)
    sinks = {r: np.zeros(512, np.uint8) for r in range(1, tasks)}

    def program(task):
        for _round in range(3):  # repeated chunks exercise flow control
            src = source if task.rank == 0 else None
            dst = None if task.rank == 0 else sinks[task.rank]
            yield from tree_smp_broadcast_chunk(state, task, tree, src, dst)

    machine.launch(program)
    for sink in sinks.values():
        assert np.array_equal(sink, source)


def test_tree_broadcast_slower_than_flat():
    """The §2.2 finding at primitive level (also bench A2)."""

    def run(flavor, tasks=16):
        machine, srm, state = node_setup(tasks)
        tree = map_to_ranks(binomial_tree(tasks), list(range(tasks)))
        source = np.ones(4096, np.uint8)
        sinks = {r: np.zeros(4096, np.uint8) for r in range(1, tasks)}

        def program(task):
            src = source if task.rank == 0 else None
            dst = None if task.rank == 0 else sinks[task.rank]
            if flavor == "flat":
                yield from smp_broadcast_chunk(state, task, task.rank == 0, src, dst)
            else:
                yield from tree_smp_broadcast_chunk(state, task, tree, src, dst)

        return machine.launch(program).elapsed

    assert run("flat") < run("tree")


# ---------------------------------------------------------------------------
# SMP reduce
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("tasks", [1, 2, 3, 4, 8, 15, 16])
def test_smp_reduce_chunk_correct(tasks):
    machine, srm, state = node_setup(tasks)
    tree = srm.ctx.reduce_plan(0).trees.intra[0]
    sources = {r: np.full(100, float(r + 1)) for r in range(tasks)}
    target = np.zeros(100)

    def program(task):
        out = target if task.rank == 0 else None
        result = yield from smp_reduce_chunk(
            state, task, tree, sources[task.rank], SUM, target=out
        )
        return result is not None

    results = machine.launch(program).results
    assert np.all(target == sum(range(1, tasks + 1)))
    assert results[0] is True  # root returns the accumulated view
    assert all(not results[r] for r in range(1, tasks))


def test_smp_reduce_zero_copy_single_task():
    machine, srm, state = node_setup(1)
    source = np.full(10, 5.0)

    def program(task):
        result = yield from smp_reduce_chunk(state, task, srm.ctx.reduce_plan(0).trees.intra[0], source, SUM)
        return result

    result = machine.launch(program).results[0]
    assert result is source  # zero-copy: the source doubles as the partial
    assert machine.task(0).stats.copies == 0


def test_smp_reduce_root_copies_when_alone_with_target():
    machine, srm, state = node_setup(1)
    source = np.full(10, 5.0)
    target = np.zeros(10)

    def program(task):
        yield from smp_reduce_chunk(
            state, task, srm.ctx.reduce_plan(0).trees.intra[0], source, SUM, target=target
        )

    machine.launch(program)
    assert np.all(target == 5.0)


def test_smp_reduce_leaf_copy_count_matches_fig2():
    machine, srm, state = node_setup(8)
    tree = srm.ctx.reduce_plan(0).trees.intra[0]
    sources = {r: np.full(64, 1.0) for r in range(8)}
    target = np.zeros(64)

    def program(task):
        out = target if task.rank == 0 else None
        yield from smp_reduce_chunk(state, task, tree, sources[task.rank], SUM, target=out)

    machine.launch(program)
    total_copies = sum(t.stats.copies for t in machine.tasks)
    assert total_copies == 4  # the Fig. 2 count


def test_smp_reduce_operators(tasks=4):
    machine, srm, state = node_setup(tasks)
    tree = srm.ctx.reduce_plan(0).trees.intra[0]
    sources = {r: np.full(32, float(r)) for r in range(tasks)}
    target = np.zeros(32)

    def program(task):
        out = target if task.rank == 0 else None
        yield from smp_reduce_chunk(state, task, tree, sources[task.rank], MAX, target=out)

    machine.launch(program)
    assert np.all(target == tasks - 1)


def test_smp_reduce_pipelines_two_chunks_ahead():
    """A leaf may run at most two chunks ahead of its parent (the two slot
    generations), which is what overlaps the SMP and network stages."""
    machine, srm, state = node_setup(2)
    tree = srm.ctx.reduce_plan(0).trees.intra[0]
    source = np.ones(64)
    target = np.zeros(64)
    leaf_progress = []

    def program(task):
        for chunk in range(4):
            if task.rank == 1:
                yield from smp_reduce_chunk(state, task, tree, source, SUM)
                leaf_progress.append((chunk, task.engine.now))
            else:
                yield from task.compute(100e-6)  # root is slow
                yield from smp_reduce_chunk(state, task, tree, source, SUM, target=target)

    machine.launch(program)
    # Leaf finished chunks 0 and 1 before the slow root consumed anything.
    assert leaf_progress[1][1] < 100e-6
    # But chunk 2 had to wait for the root's first consumption.
    assert leaf_progress[2][1] > 100e-6


# ---------------------------------------------------------------------------
# SMP barrier
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("tasks", [1, 2, 7, 16])
def test_smp_barrier_holds_everyone(tasks):
    machine, srm, state = node_setup(tasks)
    arrivals, releases = {}, {}

    def program(task):
        yield from task.compute(1e-6 * (tasks - task.rank))
        arrivals[task.rank] = task.engine.now
        yield from smp_barrier(state, task)
        releases[task.rank] = task.engine.now

    machine.launch(program)
    assert min(releases.values()) >= max(arrivals.values())


def test_smp_barrier_master_runs_between_phase():
    machine, srm, state = node_setup(4)
    phases = []

    def between(task):
        phases.append(("between", task.engine.now))
        yield from task.compute(10e-6)

    def program(task):
        if task.is_node_master:
            yield from smp_barrier(state, task, between(task))
        else:
            yield from smp_barrier(state, task)
        phases.append((task.rank, task.engine.now))

    machine.launch(program)
    between_time = next(t for label, t in phases if label == "between")
    for label, t in phases:
        if label != "between":
            assert t >= between_time + 10e-6


# ---------------------------------------------------------------------------
# barrier-synced SMP broadcast (the §4 Sistare-style A7 variant)
# ---------------------------------------------------------------------------


def test_barrier_synced_broadcast_delivers():
    from repro.core.smp.broadcast import barrier_synced_smp_broadcast_chunk

    machine, srm, state = node_setup(6)
    source = np.arange(1000, dtype=np.uint8)
    sinks = {r: np.zeros(1000, np.uint8) for r in range(1, 6)}

    def program(task):
        for _round in range(3):
            src = source if task.rank == 0 else None
            dst = None if task.rank == 0 else sinks[task.rank]
            yield from barrier_synced_smp_broadcast_chunk(
                state, task, task.rank == 0, src, dst
            )

    machine.launch(program)
    for sink in sinks.values():
        assert np.array_equal(sink, source)


def test_barrier_synced_broadcast_slower_than_flags():
    from repro.core.smp.broadcast import (
        barrier_synced_smp_broadcast_chunk,
        smp_broadcast_chunk,
    )

    def run(flavor):
        machine, srm, state = node_setup(8)
        source = np.ones(2048, np.uint8)
        sinks = {r: np.zeros(2048, np.uint8) for r in range(1, 8)}

        def program(task):
            src = source if task.rank == 0 else None
            dst = None if task.rank == 0 else sinks[task.rank]
            if flavor == "flags":
                yield from smp_broadcast_chunk(state, task, task.rank == 0, src, dst)
            else:
                yield from barrier_synced_smp_broadcast_chunk(
                    state, task, task.rank == 0, src, dst
                )

        return machine.launch(program).elapsed

    assert run("flags") < run("barrier")
