"""Property tests for ragged / non-power-of-two tree embeddings (paper §2.1, §5).

Equation (1)'s no-extra-steps argument — the two-level embedding costs no
more height than a flat tree — assumes **equal node sizes**: with ``n``
nodes of ``p`` tasks each, ``height <= ceil(log2 n) + ceil(log2 p)``.  For
arbitrary task groups (the §5 open problem) node populations are ragged and
the honest bound replaces ``p`` with the *largest* per-node member count:
``height <= ceil(log2 k) + ceil(log2 max_m)`` over ``k`` used nodes.  These
tests pin both bounds with hypothesis-generated shapes, exhibit a ragged
group that breaks the equal-size formula, and check the SRM collectives
still compute correct results on ragged groups.
"""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SRM
from repro.machine import ClusterSpec, Machine
from repro.mpi.ops import SUM
from repro.trees import group_embedding, smp_embedding


def log2ceil(value: int) -> int:
    return math.ceil(math.log2(value)) if value > 1 else 0


@st.composite
def ragged_groups(draw):
    """A cluster shape plus a non-empty, usually ragged, member set."""
    nodes = draw(st.integers(min_value=2, max_value=4))
    procs = draw(st.integers(min_value=2, max_value=4))
    spec = ClusterSpec(nodes=nodes, tasks_per_node=procs)
    total = nodes * procs
    members = sorted(
        draw(st.sets(st.integers(0, total - 1), min_size=1, max_size=total))
    )
    root = draw(st.sampled_from(members))
    return spec, members, root


# ---------------------------------------------------------------------------
# equal node sizes: the equation (1) bound
# ---------------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(
    nodes=st.integers(min_value=1, max_value=8),
    procs=st.integers(min_value=1, max_value=8),
    root_seed=st.integers(min_value=0, max_value=1000),
)
def test_equal_sizes_height_bound(nodes, procs, root_seed):
    spec = ClusterSpec(nodes=nodes, tasks_per_node=procs)
    root = root_seed % spec.total_tasks
    trees = smp_embedding(spec, root)
    assert trees.height() <= log2ceil(nodes) + log2ceil(procs)


@settings(max_examples=25, deadline=None)
@given(
    log_nodes=st.integers(min_value=0, max_value=3),
    log_procs=st.integers(min_value=0, max_value=3),
)
def test_power_of_two_embedding_adds_no_height(log_nodes, log_procs):
    # With power-of-two shapes the two-level binomial embedding is exactly
    # as tall as the flat binomial tree over all P ranks: log2(P) levels.
    nodes, procs = 2**log_nodes, 2**log_procs
    spec = ClusterSpec(nodes=nodes, tasks_per_node=procs)
    trees = smp_embedding(spec, root=0)
    assert trees.height() == log_nodes + log_procs


# ---------------------------------------------------------------------------
# ragged groups: the max_m bound, and why the equal-size formula fails
# ---------------------------------------------------------------------------


@settings(max_examples=80, deadline=None)
@given(ragged_groups())
def test_ragged_height_bound_uses_max_population(case):
    spec, members, root = case
    trees = group_embedding(spec, members, root)
    populations = [len(tree.ranks) for tree in trees.intra.values()]
    k = len(populations)
    assert trees.height() <= log2ceil(k) + log2ceil(max(populations))


def test_equal_size_formula_fails_on_ragged_groups():
    # 8 members on node 0, 1 member (the root) on node 1: the equal-size
    # formula with p = |group| // k = 4 claims height <= 1 + 2 = 3, but the
    # root must first cross to node 0's representative and then descend its
    # 8-member binomial tree: height 1 + 3 = 4.  Only the max_m bound holds.
    spec = ClusterSpec(nodes=2, tasks_per_node=8)
    members = list(range(8)) + [8]
    trees = group_embedding(spec, members, root=8)
    k = len(trees.intra)
    naive_p = len(members) // k
    assert trees.height() > log2ceil(k) + log2ceil(naive_p)
    assert trees.height() <= log2ceil(k) + log2ceil(8)


@settings(max_examples=80, deadline=None)
@given(ragged_groups())
def test_ragged_embedding_structure(case):
    spec, members, root = case
    trees = group_embedding(spec, members, root)
    combined = trees.combined()
    # Spans exactly the group.
    assert sorted(combined.ranks) == members
    # Every member reaches the root through finite parent chains (no cycles).
    for rank in members:
        hops, current = 0, rank
        while current != root:
            parent = combined.parent_of(current)
            assert parent is not None, f"rank {current} is disconnected"
            current = parent
            hops += 1
            assert hops <= len(members), "cycle in combined tree"
    # Intra edges never cross nodes; inter edges only join representatives.
    for node, tree in trees.intra.items():
        for rank in tree.ranks:
            parent = tree.parent_of(rank)
            if parent is not None:
                assert spec.node_of(parent) == spec.node_of(rank) == node
    representatives = set(trees.representatives.values())
    for rank in trees.inter.ranks:
        assert rank in representatives


# ---------------------------------------------------------------------------
# correctness of the collectives on ragged groups
# ---------------------------------------------------------------------------


@settings(max_examples=12, deadline=None)
@given(ragged_groups())
def test_ragged_group_broadcast_delivers_everywhere(case):
    spec, members, root = case
    machine = Machine(spec)
    srm = SRM(machine, group=members)
    payload = np.arange(700, dtype=np.uint8) % 251
    buffers = {
        r: (payload.copy() if r == root else np.zeros_like(payload)) for r in members
    }

    def program(task):
        yield from srm.broadcast(task, buffers[task.rank], root=root)

    machine.launch(program, ranks=members)
    for rank in members:
        assert np.array_equal(buffers[rank], payload), f"rank {rank}"


@settings(max_examples=12, deadline=None)
@given(ragged_groups())
def test_ragged_group_allreduce_sums_exactly(case):
    spec, members, _root = case
    machine = Machine(spec)
    srm = SRM(machine, group=members)
    sources = {r: np.full(32, float(r + 1)) for r in members}
    outs = {r: np.zeros(32) for r in members}

    def program(task):
        yield from srm.allreduce(task, sources[task.rank], outs[task.rank], SUM)

    machine.launch(program, ranks=members)
    expected = float(sum(r + 1 for r in members))
    for rank in members:
        assert np.all(outs[rank] == expected), f"rank {rank}"
