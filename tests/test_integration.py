"""Cross-stack integration and property-based tests.

These exercise the full stacks end-to-end — all three collective
implementations delivering the same answers on the same cluster shapes, with
arbitrary (hypothesis-generated) sizes, roots, dtypes, and call sequences.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import build
from repro.machine import ClusterSpec, Machine
from repro.mpi.ops import MAX, MIN, SUM

STACK_NAMES = ("srm", "ibm", "mpich")


def run_broadcast(machine, stack, payload, root):
    total = machine.spec.total_tasks
    buffers = {r: (payload.copy() if r == root else np.zeros_like(payload)) for r in range(total)}

    def program(task):
        yield from stack.broadcast(task, buffers[task.rank], root=root)

    machine.launch(program)
    return buffers


def run_allreduce(machine, stack, sources, op):
    total = machine.spec.total_tasks
    outs = {r: np.zeros_like(sources[r]) for r in range(total)}

    def program(task):
        yield from stack.allreduce(task, sources[task.rank], outs[task.rank], op)

    machine.launch(program)
    return outs


# ---------------------------------------------------------------------------
# all stacks agree
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", STACK_NAMES)
def test_stacks_deliver_identical_broadcast(name):
    machine, stack = build(name, ClusterSpec(nodes=3, tasks_per_node=3))
    payload = np.random.default_rng(5).random(777)
    buffers = run_broadcast(machine, stack, payload, root=4)
    for buffer in buffers.values():
        assert np.array_equal(buffer, payload)


@pytest.mark.parametrize("name", STACK_NAMES)
@pytest.mark.parametrize("op,reducer", [(SUM, np.sum), (MIN, np.min), (MAX, np.max)])
def test_stacks_deliver_identical_allreduce(name, op, reducer):
    machine, stack = build(name, ClusterSpec(nodes=2, tasks_per_node=3))
    rng = np.random.default_rng(9)
    sources = {r: rng.random(100) for r in range(6)}
    outs = run_allreduce(machine, stack, sources, op)
    expected = reducer(np.stack(list(sources.values())), axis=0)
    for out in outs.values():
        assert np.allclose(out, expected)


def test_mixed_operation_sequence_all_stacks():
    """A realistic application pattern: bcast -> compute -> reduce ->
    allreduce -> barrier, several iterations, identical results."""
    finals = {}
    for name in STACK_NAMES:
        machine, stack = build(name, ClusterSpec(nodes=2, tasks_per_node=4))
        total = 8
        state = {r: np.zeros(64) for r in range(total)}
        if True:
            state[0][:] = 1.0
        reduced = np.zeros(64)
        summed = {r: np.zeros(64) for r in range(total)}

        def program(task):
            for _iteration in range(3):
                yield from stack.broadcast(task, state[task.rank], root=0)
                local = state[task.rank] * (task.rank + 1)
                dst = reduced if task.rank == 0 else None
                yield from stack.reduce(task, local, dst, SUM, root=0)
                yield from stack.allreduce(task, local, summed[task.rank], SUM)
                yield from stack.barrier(task)
                if task.rank == 0:
                    state[0][:] = reduced / 36.0

        machine.launch(program)
        finals[name] = (state[0].copy(), summed[0].copy())

    for name in ("ibm", "mpich"):
        assert np.allclose(finals[name][0], finals["srm"][0])
        assert np.allclose(finals[name][1], finals["srm"][1])


def test_srm_wins_on_representative_points():
    """The paper's claim holds at every probed (op, size) corner."""
    from repro.bench import time_operation

    spec = ClusterSpec(nodes=4, tasks_per_node=16)
    for operation, nbytes in [
        ("broadcast", 64),
        ("broadcast", 100_000),
        ("reduce", 4096),
        ("allreduce", 16384),
        ("barrier", 0),
    ]:
        machine, srm = build("srm", spec)
        srm_time = time_operation(machine, srm, operation, nbytes, repeats=2).seconds
        machine, ibm = build("ibm", spec)
        ibm_time = time_operation(machine, ibm, operation, nbytes, repeats=2).seconds
        assert srm_time < ibm_time, f"SRM lost {operation}/{nbytes}"


# ---------------------------------------------------------------------------
# property-based correctness
# ---------------------------------------------------------------------------


@given(
    nodes=st.integers(1, 4),
    tasks=st.integers(1, 5),
    count=st.integers(1, 3000),
    root_seed=st.integers(0, 1_000),
    data=st.data(),
)
@settings(max_examples=25, deadline=None)
def test_srm_broadcast_property(nodes, tasks, count, root_seed, data):
    machine, stack = build("srm", ClusterSpec(nodes=nodes, tasks_per_node=tasks))
    root = root_seed % machine.spec.total_tasks
    payload = np.frombuffer(
        np.random.default_rng(root_seed).bytes(count), dtype=np.uint8
    ).copy()
    buffers = run_broadcast(machine, stack, payload, root)
    for buffer in buffers.values():
        assert np.array_equal(buffer, payload)
    del data


@given(
    nodes=st.integers(1, 4),
    tasks=st.integers(1, 4),
    count=st.integers(1, 2500),
    seed=st.integers(0, 10_000),
)
@settings(max_examples=25, deadline=None)
def test_srm_allreduce_property(nodes, tasks, count, seed):
    machine, stack = build("srm", ClusterSpec(nodes=nodes, tasks_per_node=tasks))
    total = machine.spec.total_tasks
    rng = np.random.default_rng(seed)
    sources = {r: rng.integers(-1000, 1000, count).astype(np.int64) for r in range(total)}
    outs = run_allreduce(machine, stack, sources, SUM)
    expected = np.sum(np.stack(list(sources.values())), axis=0)
    for out in outs.values():
        assert np.array_equal(out, expected)


@given(
    nodes=st.integers(1, 3),
    tasks=st.integers(1, 4),
    sizes=st.lists(st.integers(1, 100_000), min_size=1, max_size=4),
    seed=st.integers(0, 10_000),
)
@settings(max_examples=15, deadline=None)
def test_srm_repeated_mixed_sizes_property(nodes, tasks, sizes, seed):
    """Back-to-back broadcasts of arbitrary sizes keep the double-buffer and
    counter bookkeeping consistent (the cross-call pipelining invariant)."""
    machine, stack = build("srm", ClusterSpec(nodes=nodes, tasks_per_node=tasks))
    total = machine.spec.total_tasks
    rng = np.random.default_rng(seed)
    for index, count in enumerate(sizes):
        root = int(rng.integers(total))
        payload = rng.integers(0, 255, count).astype(np.uint8)
        buffers = run_broadcast(machine, stack, payload, root)
        for buffer in buffers.values():
            assert np.array_equal(buffer, payload), f"call {index} corrupted"


@given(
    nodes=st.integers(1, 3),
    tasks=st.integers(1, 4),
    seed=st.integers(0, 10_000),
)
@settings(max_examples=15, deadline=None)
def test_baseline_allreduce_property(nodes, tasks, seed):
    machine, stack = build("ibm", ClusterSpec(nodes=nodes, tasks_per_node=tasks))
    total = machine.spec.total_tasks
    rng = np.random.default_rng(seed)
    sources = {r: rng.random(64) for r in range(total)}
    outs = run_allreduce(machine, stack, sources, SUM)
    expected = np.sum(np.stack(list(sources.values())), axis=0)
    for out in outs.values():
        assert np.allclose(out, expected)


def test_simulation_is_deterministic():
    """Two identical runs produce bit-identical clocks and results."""

    def run():
        machine, stack = build("srm", ClusterSpec(nodes=2, tasks_per_node=4))
        payload = np.arange(5000, dtype=np.uint8)
        run_broadcast(machine, stack, payload, root=3)
        sources = {r: np.full(100, float(r)) for r in range(8)}
        run_allreduce(machine, stack, sources, SUM)
        return machine.now

    assert run() == run()
