"""Unit tests for the verification harness (invariants, faults, explorer)."""

import numpy as np
import pytest

from repro.errors import DeadlockError, VerificationError
from repro.machine import ClusterSpec, Machine
from repro.shmem.buffers import DoubleBuffer
from repro.shmem.flags import SharedFlag
from repro.sim import Engine, RandomScheduler
from repro.verify import FaultPlan, Verifier
from repro.verify.explorer import ScheduleOutcome, explore_cell
from repro.verify.mutations import MUTATIONS, apply_mutation
from repro.verify.runner import Cell, run_cell, run_cell_once, run_mutation_smoke


def small_machine():
    return Machine(ClusterSpec(nodes=2, tasks_per_node=2))


# ---------------------------------------------------------------------------
# flag invariants
# ---------------------------------------------------------------------------


def attach(machine, **kwargs):
    verifier = Verifier(**kwargs)
    machine.engine.verifier = verifier
    return verifier


def test_ready_flag_handshake_is_clean():
    machine = small_machine()
    verifier = attach(machine)
    flag = SharedFlag(machine.nodes[0], kind="ready", name="rdy")
    flag.store(1)
    flag.store(0)
    assert verifier.clean


def test_ready_flag_double_set_is_violation():
    machine = small_machine()
    verifier = attach(machine)
    flag = SharedFlag(machine.nodes[0], kind="ready", name="rdy")
    flag.store(1)
    flag.store(1)
    assert [v.rule for v in verifier.violations] == ["flag-double-set"]
    assert "rdy" in str(verifier.violations[0])


def test_ready_flag_redundant_clear_is_violation():
    machine = small_machine()
    verifier = attach(machine)
    flag = SharedFlag(machine.nodes[0], kind="ready", name="rdy")
    flag.store(0)
    assert [v.rule for v in verifier.violations] == ["flag-redundant-clear"]


def test_ready_flag_nonbinary_is_violation():
    machine = small_machine()
    verifier = attach(machine)
    flag = SharedFlag(machine.nodes[0], kind="checkin", name="chk")
    flag.store(3)
    assert [v.rule for v in verifier.violations] == ["flag-nonbinary"]


def test_sequence_flag_monotone_ok_decrease_fires():
    machine = small_machine()
    verifier = attach(machine)
    flag = SharedFlag(machine.nodes[0], kind="sequence", name="seq")
    flag.store(1)
    flag.store(5)
    flag.store(5)  # repeats are fine for cumulative counters
    assert verifier.clean
    flag.store(2)
    assert [v.rule for v in verifier.violations] == ["sequence-decrease"]


def test_untyped_flag_is_never_checked():
    machine = small_machine()
    verifier = attach(machine)
    flag = SharedFlag(machine.nodes[0], name="anon")
    flag.store(1)
    flag.store(1)
    flag.store(0)
    flag.store(0)
    assert verifier.clean


def test_strict_mode_raises_at_violation_site():
    machine = small_machine()
    attach(machine, strict=True)
    flag = SharedFlag(machine.nodes[0], kind="ready", name="rdy")
    flag.store(1)
    with pytest.raises(VerificationError, match="flag-double-set"):
        flag.store(1)


def test_violation_cap_counts_dropped():
    machine = small_machine()
    verifier = attach(machine, max_violations=2)
    flag = SharedFlag(machine.nodes[0], kind="ready", name="rdy")
    flag.store(1)
    for _ in range(5):
        flag.store(1)
    assert len(verifier.violations) == 2
    assert verifier.dropped == 3
    assert not verifier.clean


def test_verifier_counter_integration():
    class Spy:
        calls = 0

        def inc(self, amount=1):
            Spy.calls += amount

    machine = small_machine()
    attach(machine, counter=Spy())
    flag = SharedFlag(machine.nodes[0], kind="ready", name="rdy")
    flag.store(1)
    flag.store(1)
    flag.store(1)
    assert Spy.calls == 2


# ---------------------------------------------------------------------------
# counter invariants
# ---------------------------------------------------------------------------


def test_counter_set_under_waiters_is_violation():
    machine = small_machine()
    verifier = attach(machine)
    task = machine.tasks[0]
    counter = task.lapi.counter(name="cnt")
    counter.increment(3)
    assert counter.event_at(10) is not None  # park a waiter
    counter.set(0)
    assert [v.rule for v in verifier.violations] == ["counter-reset-under-waiters"]


def test_counter_set_without_waiters_is_fine():
    machine = small_machine()
    verifier = attach(machine)
    counter = machine.tasks[0].lapi.counter(name="cnt")
    counter.increment(3)
    counter.set(0)  # the between-operations reset LAPI_Setcntr exists for
    assert verifier.clean


def test_counter_over_consume_is_violation():
    machine = small_machine()
    verifier = attach(machine)
    counter = machine.tasks[0].lapi.counter(name="cnt")
    counter.increment(1)
    with pytest.raises(Exception):
        counter.consume(5)
    assert [v.rule for v in verifier.violations] == ["counter-over-consume"]


# ---------------------------------------------------------------------------
# buffer invariants
# ---------------------------------------------------------------------------


def test_buffer_fill_while_held_is_violation():
    machine = small_machine()
    verifier = attach(machine)
    dbuf = DoubleBuffer(machine.nodes[0], 256, flags_per_buffer=2, name="buf")
    dbuf.check_fill(0, writer_index=0)
    assert verifier.clean  # all flags clear: fill is legal
    dbuf.flags(0)[1].store(1)
    dbuf.check_fill(0, writer_index=0)
    assert [v.rule for v in verifier.violations] == ["buffer-overwrite-in-use"]


def test_buffer_drain_before_ready_is_violation():
    machine = small_machine()
    verifier = attach(machine)
    dbuf = DoubleBuffer(machine.nodes[0], 256, flags_per_buffer=2, name="buf")
    dbuf.check_drain(0, reader_index=1)
    assert [v.rule for v in verifier.violations] == ["read-before-ready"]
    verifier.reset()
    dbuf.flags(0)[1].store(1)
    dbuf.check_drain(0, reader_index=1)
    assert verifier.clean


def test_hooks_are_noops_without_verifier():
    machine = small_machine()
    assert machine.engine.verifier is None
    dbuf = DoubleBuffer(machine.nodes[0], 256, flags_per_buffer=2, name="buf")
    dbuf.check_fill(0)
    dbuf.check_drain(0, reader_index=1)  # would be a violation if checked
    flag = SharedFlag(machine.nodes[0], kind="ready")
    flag.store(0)


# ---------------------------------------------------------------------------
# fault plan
# ---------------------------------------------------------------------------


def test_fault_plan_is_deterministic_per_seed():
    def draws(seed):
        plan = FaultPlan(seed=seed, put_jitter_probability=1.0)
        return [plan.put_jitter() for _ in range(10)]

    assert draws(4) == draws(4)
    assert draws(4) != draws(5)


def test_fault_plan_reset_replays():
    plan = FaultPlan(seed=9, put_jitter_probability=1.0)
    first = [plan.put_jitter() for _ in range(5)]
    plan.reset()
    assert [plan.put_jitter() for _ in range(5)] == first
    assert plan.injected["put_jitter"] == 5


def test_fault_plan_reorder_never_mutates_or_drops():
    plan = FaultPlan(seed=0, reorder_probability=1.0)
    waiters = [(None, object(), rank) for rank in range(6)]
    original = list(waiters)
    shuffled = plan.reorder_wakeups(waiters)
    assert waiters == original  # caller's list untouched
    assert sorted(map(id, shuffled)) == sorted(map(id, original))


def test_fault_plan_zero_probability_is_silent():
    plan = FaultPlan(
        seed=1,
        put_jitter_probability=0.0,
        reorder_probability=0.0,
        master_stall_probability=0.0,
    )
    assert plan.put_jitter() == 0.0
    assert plan.master_stall() == 0.0
    assert plan.injected == {"put_jitter": 0, "wakeup_reorder": 0, "master_stall": 0}


# ---------------------------------------------------------------------------
# explorer
# ---------------------------------------------------------------------------


def _toy_run_one(scheduler, variant_seed):
    """A tiny contended workload whose outcome digest is the firing order."""
    engine = Engine(scheduler=scheduler)
    seen = []
    for label in "abcd":
        engine.timeout(1.0, value=label).add_callback(lambda e: seen.append(e.value))
    engine.run()
    return ScheduleOutcome(
        explorer=scheduler.name,
        signature=scheduler.signature(),
        digest="".join(seen),
        elapsed=engine.now,
        violations=[],
    )


def test_random_explorer_finds_distinct_schedules():
    outcomes = explore_cell(_toy_run_one, explorer="random", schedules=10, seed=0)
    signatures = {o.signature for o in outcomes}
    assert len(signatures) == len(outcomes) > 1
    digests = {o.digest for o in outcomes}
    assert all(sorted(d) == ["a", "b", "c", "d"] for d in digests)


def test_dfs_explorer_enumerates_all_orders_of_one_batch():
    # One 4-way decision capped at max_branch=4 has exactly 4 first-event
    # choices; the defaulted suffix keeps the rest in FIFO order.
    outcomes = explore_cell(_toy_run_one, explorer="dfs", schedules=50, seed=0)
    digests = sorted(o.digest for o in outcomes)
    assert digests == ["abcd", "bacd", "cabd", "dabc"]


def test_unknown_explorer_raises():
    with pytest.raises(VerificationError):
        explore_cell(_toy_run_one, explorer="exhaustive", schedules=1)


# ---------------------------------------------------------------------------
# runner cells
# ---------------------------------------------------------------------------


def test_reference_run_is_clean_and_digest_stable():
    cell = Cell(2, 2, "broadcast", "small", 2048)
    first = run_cell_once(cell, scheduler=None)
    second = run_cell_once(cell, scheduler=None)
    assert first.error is None and not first.violations
    assert first.digest == second.digest


def test_random_schedule_matches_reference_digest():
    cell = Cell(2, 2, "allreduce", "small", 1024)
    reference = run_cell_once(cell, scheduler=None)
    explored = run_cell_once(cell, RandomScheduler(seed=3))
    assert explored.error is None and not explored.violations
    assert explored.digest == reference.digest


def test_run_cell_reports_clean_grid_entry():
    entry = run_cell(Cell(2, 2, "reduce", "small", 1024), schedules=6, seed=1)
    assert entry["ok"]
    assert entry["schedules_explored"] >= 6
    assert entry["distinct_signatures"] >= 2
    assert entry["violation_count"] == 0
    assert entry["divergences"] == 0


def test_run_cell_with_faults_still_invariant():
    entry = run_cell(
        Cell(2, 3, "broadcast", "pipelined", 16384), schedules=6, seed=0, faults=True
    )
    assert entry["ok"]
    assert sum(entry["faults_injected"].values()) > 0  # faults actually fired


def test_overlap_cells_are_schedule_invariant():
    """Two outstanding invocations of one plan (plan2) and two plans in
    flight on one group (plans) stay digest-identical across schedules."""
    for overlap in ("plan2", "plans"):
        entry = run_cell(
            Cell(2, 2, "broadcast", "small", 2048, overlap=overlap),
            schedules=6,
            seed=0,
        )
        assert entry["ok"], entry["violations"][:3]
        assert entry["overlap"] == overlap
        assert entry["cell"].endswith(f"/{overlap}")


def test_overlap_digest_matches_blocking_digest():
    """Overlapped starts must land the same bytes as two blocking calls:
    the request layer reorders *setup*, never data."""
    blocking = run_cell_once(Cell(2, 2, "broadcast", "small", 2048), scheduler=None)
    overlapped = run_cell_once(
        Cell(2, 2, "broadcast", "small", 2048, overlap="plan2"), scheduler=None
    )
    assert overlapped.error is None and not overlapped.violations
    assert overlapped.digest == blocking.digest


# ---------------------------------------------------------------------------
# mutation smoke
# ---------------------------------------------------------------------------


def test_mutation_registry_shapes():
    assert set(MUTATIONS) == {
        "skip-ready-wait",
        "skip-ready-set",
        "alias-invocation-slot",
        "stale-compiled-schedule",
    }
    with pytest.raises(VerificationError):
        apply_mutation("no-such-mutation")


def test_skip_ready_wait_mutation_is_detected():
    cell = Cell(2, 3, "broadcast", "small", 2048)
    with apply_mutation("skip-ready-wait"):
        outcome = run_cell_once(cell, scheduler=None)
    rules = {violation["rule"] for violation in outcome.violations}
    assert "read-before-ready" in rules


def test_skip_ready_set_mutation_deadlocks_with_named_ranks():
    cell = Cell(2, 3, "broadcast", "small", 2048)
    with apply_mutation("skip-ready-set"):
        outcome = run_cell_once(cell, scheduler=None)
    assert outcome.error is not None
    assert "DeadlockError" in outcome.error
    assert "blocked forever" in outcome.error
    assert "rank" in outcome.error  # the starved process is named


def test_alias_invocation_slot_mutation_detected_on_overlap_cell():
    """Dropping window reservation + the started-order chain is invisible to
    blocking programs but caught on an overlap cell."""
    blocking = Cell(2, 3, "broadcast", "small", 2048)
    overlap = Cell(2, 3, "broadcast", "small", 2048, overlap="plan2")
    with apply_mutation("alias-invocation-slot"):
        clean = run_cell_once(blocking, scheduler=None)
        entry = run_cell(overlap, schedules=4, seed=0, faults=False)
    assert clean.error is None and not clean.violations
    assert entry["violation_count"] > 0 or entry["errors"] > 0


def test_mutations_unpatch_cleanly():
    cell = Cell(2, 2, "broadcast", "small", 2048)
    for name in ("skip-ready-wait", "alias-invocation-slot"):
        with apply_mutation(name):
            pass
    outcome = run_cell_once(cell, scheduler=None)
    assert outcome.error is None and not outcome.violations


def test_mutation_smoke_detects_everything():
    body = run_mutation_smoke(schedules=4)
    assert body["ok"]
    assert {m["mutation"] for m in body["mutations"]} == set(MUTATIONS)
    assert all(m["detected"] for m in body["mutations"])
