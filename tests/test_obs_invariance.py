"""Observation must never perturb the simulation.

A machine built with ``observe=False`` swaps the metrics registry and phase
recorder for no-ops; everything the simulation computes — output buffers,
makespans, even the number of engine events processed — must be bit-identical
to an instrumented run.
"""

import re

import numpy as np

from repro.core.srm import SRM
from repro.machine import ClusterSpec
from repro.machine.cluster import Machine
from repro.mpi.ops import SUM


def run_op(observe, op, nbytes, nodes=2, tasks=4):
    machine = Machine(ClusterSpec(nodes=nodes, tasks_per_node=tasks), observe=observe)
    srm = SRM(machine)
    total = machine.spec.total_tasks
    count = max(1, nbytes // 8)
    buffers = {r: np.zeros(max(1, nbytes), np.uint8) for r in range(total)}
    if total:
        buffers[0][:] = np.arange(max(1, nbytes), dtype=np.uint8) % 251
    sources = {r: np.full(count, float(r + 1)) for r in range(total)}
    outs = {r: np.zeros(count) for r in range(total)}
    destination = np.zeros(count)

    def program(task):
        if op == "broadcast":
            yield from srm.broadcast(task, buffers[task.rank], root=0)
        elif op == "reduce":
            dst = destination if task.rank == 0 else None
            yield from srm.reduce(task, sources[task.rank], dst, SUM, root=0)
        elif op == "allreduce":
            yield from srm.allreduce(task, sources[task.rank], outs[task.rank], SUM)
        else:
            yield from srm.barrier(task)

    result = machine.launch(program)
    data = {
        "broadcast": buffers,
        "reduce": {0: destination},
        "allreduce": outs,
        "barrier": {},
    }[op]
    return machine, result, data


def assert_invariant(op, nbytes):
    machine_on, result_on, data_on = run_op(True, op, nbytes)
    machine_off, result_off, data_off = run_op(False, op, nbytes)
    # Identical timing, to the last event...
    assert result_on.elapsed == result_off.elapsed
    assert result_on.finish_times == result_off.finish_times
    assert machine_on.engine.now == machine_off.engine.now
    assert machine_on.engine.events_processed == machine_off.engine.events_processed
    # ...and bit-identical data.
    assert set(data_on) == set(data_off)
    for rank in data_on:
        assert np.array_equal(data_on[rank], data_off[rank])
    # The off switch really is off; the on switch really recorded.
    assert not machine_off.obs.recorder.spans
    assert not machine_off.obs.recorder.flows
    assert machine_off.obs.metrics.to_dict() == {}
    assert machine_on.obs.recorder.spans


def test_broadcast_small_invariant():
    assert_invariant("broadcast", 8192)


def test_broadcast_large_invariant():
    assert_invariant("broadcast", 262144)


def test_reduce_invariant():
    assert_invariant("reduce", 16384)


def test_allreduce_exchange_invariant():
    assert_invariant("allreduce", 8192)


def test_allreduce_pipelined_invariant():
    assert_invariant("allreduce", 262144)


def test_barrier_invariant():
    assert_invariant("barrier", 0)


def test_observe_flag_defaults_on():
    machine = Machine(ClusterSpec(nodes=1, tasks_per_node=2))
    assert machine.obs.enabled
    assert machine.obs.metrics.enabled


# ---------------------------------------------------------------------------
# compiled replay: replayed windows must re-emit the recorded observability
# ---------------------------------------------------------------------------


def _window_spans(recorder, t0, t1):
    """Spans of one window, time-shifted and with window-relative parents.

    The window is half-open in the span's *start*: zero-length spans (e.g.
    ``request`` dispatch) sit exactly on quiescence boundaries, so a span
    starting at ``t1`` belongs to the next window, not this one.
    """
    eps = 1e-9
    rows = [
        (index, span)
        for index, span in enumerate(recorder.spans)
        if span.start >= t0 - eps
        and span.start < t1 - eps
        and span.end is not None
        and span.end <= t1 + eps
    ]
    base = rows[0][0] if rows else 0
    normalized = []
    for index, span in rows:
        detail = re.sub(r"#\d+", "#N", span.detail or "")
        parent = span.parent - base if span.parent >= 0 else -1
        normalized.append(
            (
                span.name,
                span.rank,
                span.depth,
                span.track,
                round(span.start - t0, 9),
                round(span.end - t0, 9),
                parent,
                detail,
            )
        )
    return normalized


def test_replayed_window_reemits_recorded_observability():
    """Phase spans, critical-path breakdown, and wait classification of a
    replayed window match the recorded run it was compiled from (shifted to
    the replay window's start; invocation numbers normalized)."""
    from repro.core import SRMConfig
    from repro.obs.critical import critical_path
    from repro.obs.waits import classify_waits

    machine = Machine(ClusterSpec(nodes=2, tasks_per_node=2))
    srm = SRM(machine, config=SRMConfig(compiled_replay=True))
    total = machine.spec.total_tasks
    buffers = {r: np.zeros(2048, np.uint8) for r in range(total)}
    plans = [srm.plan_broadcast(machine.task(r), buffers[r], root=0) for r in range(total)]

    manager = None
    windows = []  # (t0, t1, was_hit)
    for window in range(8):
        buffers[0][:] = window + 1
        t0 = machine.engine.now
        hits_before = machine.engine.trace.hit_count if machine.engine.trace else 0
        for plan in plans:
            plan.start()
        machine.engine.run()
        manager = machine.engine.trace
        windows.append((t0, machine.engine.now, manager.hit_count > hits_before))

    # Pick a recorded (miss) window and a replayed (hit) window of the same
    # slot parity — the replay applied exactly that recorded trace.
    recorded = max(i for i, (_, _, hit) in enumerate(windows) if not hit)
    replayed = max(
        i for i, (_, _, hit) in enumerate(windows) if hit and i % 2 == recorded % 2
    )
    rec_t0, rec_t1, _ = windows[recorded]
    rep_t0, rep_t1, _ = windows[replayed]

    # Same wall of phase spans, time-shifted.
    recorder = machine.obs.recorder
    rec_spans = _window_spans(recorder, rec_t0, rec_t1)
    rep_spans = _window_spans(recorder, rep_t0, rep_t1)
    assert rec_spans, "recorded window produced no spans"
    assert rec_spans == rep_spans

    # Same critical-path breakdown over the window...
    rec_path = critical_path(recorder, start=rec_t0, end=rec_t1)
    rep_path = critical_path(recorder, start=rep_t0, end=rep_t1)
    rec_segments = [
        (s.phase, s.rank, round(s.start - rec_t0, 9), round(s.end - rec_t0, 9))
        for s in rec_path.segments
    ]
    rep_segments = [
        (s.phase, s.rank, round(s.start - rep_t0, 9), round(s.end - rep_t0, 9))
        for s in rep_path.segments
    ]
    assert rec_segments == rep_segments

    # ...and the same wait-state classification.
    rec_waits = classify_waits(machine, start=rec_t0, end=rec_t1)
    rep_waits = classify_waits(machine, start=rep_t0, end=rep_t1)

    def wait_rows(report, t0):
        return sorted(
            (
                interval.rank,
                interval.phase,
                interval.context,
                interval.state,
                interval.resource,
                interval.on_critical_path,
                round(interval.start - t0, 9),
                round(interval.end - t0, 9),
            )
            for interval in report.intervals
        )

    assert wait_rows(rec_waits, rec_t0) == wait_rows(rep_waits, rep_t0)
