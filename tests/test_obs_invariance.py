"""Observation must never perturb the simulation.

A machine built with ``observe=False`` swaps the metrics registry and phase
recorder for no-ops; everything the simulation computes — output buffers,
makespans, even the number of engine events processed — must be bit-identical
to an instrumented run.
"""

import numpy as np

from repro.core.srm import SRM
from repro.machine import ClusterSpec
from repro.machine.cluster import Machine
from repro.mpi.ops import SUM


def run_op(observe, op, nbytes, nodes=2, tasks=4):
    machine = Machine(ClusterSpec(nodes=nodes, tasks_per_node=tasks), observe=observe)
    srm = SRM(machine)
    total = machine.spec.total_tasks
    count = max(1, nbytes // 8)
    buffers = {r: np.zeros(max(1, nbytes), np.uint8) for r in range(total)}
    if total:
        buffers[0][:] = np.arange(max(1, nbytes), dtype=np.uint8) % 251
    sources = {r: np.full(count, float(r + 1)) for r in range(total)}
    outs = {r: np.zeros(count) for r in range(total)}
    destination = np.zeros(count)

    def program(task):
        if op == "broadcast":
            yield from srm.broadcast(task, buffers[task.rank], root=0)
        elif op == "reduce":
            dst = destination if task.rank == 0 else None
            yield from srm.reduce(task, sources[task.rank], dst, SUM, root=0)
        elif op == "allreduce":
            yield from srm.allreduce(task, sources[task.rank], outs[task.rank], SUM)
        else:
            yield from srm.barrier(task)

    result = machine.launch(program)
    data = {
        "broadcast": buffers,
        "reduce": {0: destination},
        "allreduce": outs,
        "barrier": {},
    }[op]
    return machine, result, data


def assert_invariant(op, nbytes):
    machine_on, result_on, data_on = run_op(True, op, nbytes)
    machine_off, result_off, data_off = run_op(False, op, nbytes)
    # Identical timing, to the last event...
    assert result_on.elapsed == result_off.elapsed
    assert result_on.finish_times == result_off.finish_times
    assert machine_on.engine.now == machine_off.engine.now
    assert machine_on.engine.events_processed == machine_off.engine.events_processed
    # ...and bit-identical data.
    assert set(data_on) == set(data_off)
    for rank in data_on:
        assert np.array_equal(data_on[rank], data_off[rank])
    # The off switch really is off; the on switch really recorded.
    assert not machine_off.obs.recorder.spans
    assert not machine_off.obs.recorder.flows
    assert machine_off.obs.metrics.to_dict() == {}
    assert machine_on.obs.recorder.spans


def test_broadcast_small_invariant():
    assert_invariant("broadcast", 8192)


def test_broadcast_large_invariant():
    assert_invariant("broadcast", 262144)


def test_reduce_invariant():
    assert_invariant("reduce", 16384)


def test_allreduce_exchange_invariant():
    assert_invariant("allreduce", 8192)


def test_allreduce_pipelined_invariant():
    assert_invariant("allreduce", 262144)


def test_barrier_invariant():
    assert_invariant("barrier", 0)


def test_observe_flag_defaults_on():
    machine = Machine(ClusterSpec(nodes=1, tasks_per_node=2))
    assert machine.obs.enabled
    assert machine.obs.metrics.enabled
