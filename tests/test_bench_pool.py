"""Tests for the parallel grid executor and its byte-identity guarantee.

Workers used with ``jobs > 1`` run in *spawned* child processes, so every
worker in this module is a top-level function (spawn pickles them by
qualified name).
"""

import json
import os

import pytest

from repro.bench.pool import resolve_jobs, run_grid
from repro.bench.selfbench import SELFBENCH_KIND, kernel_selfbench
from repro.bench.snapshot import cell_seed, collect_snapshot, write_snapshot
from repro.bench.sweeps import clear_cache, measure, warm_cache
from repro.errors import ConfigurationError


@pytest.fixture
def tiny_grid(monkeypatch):
    monkeypatch.setattr("repro.bench.snapshot.message_sizes", lambda: [512])
    monkeypatch.setattr("repro.bench.snapshot.processor_configs", lambda: [1, 2])


# -- spawn-safe workers (module level by contract) --------------------------


def _square(cell):
    return cell * cell


def _explode(cell):
    raise ValueError(f"boom on {cell}")


# -- resolve_jobs -----------------------------------------------------------


def test_resolve_jobs_serial_default():
    assert resolve_jobs(1) == 1


def test_resolve_jobs_zero_means_all_cores():
    assert resolve_jobs(0) == (os.cpu_count() or 1)


def test_resolve_jobs_negative_rejected():
    with pytest.raises(ConfigurationError):
        resolve_jobs(-2)


def test_resolve_jobs_clamped_to_cell_count():
    assert resolve_jobs(8, cells=3) == 3
    assert resolve_jobs(8, cells=0) == 1


# -- run_grid ---------------------------------------------------------------


def test_run_grid_empty():
    assert run_grid([], _square, jobs=4) == []


def test_run_grid_serial_preserves_order_and_reports_progress():
    seen = []
    results = run_grid(
        [3, 1, 2], _square, jobs=1,
        progress=lambda cell, done, total: seen.append((cell, done, total)),
    )
    assert results == [9, 1, 4]
    assert seen == [(3, 1, 3), (1, 2, 3), (2, 3, 3)]


def test_run_grid_parallel_matches_serial():
    cells = list(range(7))
    serial = run_grid(cells, _square, jobs=1)
    parallel = run_grid(cells, _square, jobs=2)
    assert parallel == serial == [c * c for c in cells]


def test_run_grid_parallel_reports_all_completions():
    seen = []
    run_grid(
        [1, 2, 3], _square, jobs=2,
        progress=lambda cell, done, total: seen.append((cell, total)),
    )
    # Completion order is nondeterministic, but every cell reports once.
    assert sorted(seen) == [(1, 3), (2, 3), (3, 3)]


def test_run_grid_serial_propagates_worker_error():
    with pytest.raises(ValueError, match="boom"):
        run_grid([1], _explode, jobs=1)


def test_run_grid_parallel_propagates_worker_error():
    with pytest.raises(ValueError, match="boom"):
        run_grid([1, 2], _explode, jobs=2)


# -- snapshot byte-identity (the executor's core guarantee) -----------------


def test_snapshot_parallel_is_byte_identical_to_serial(tiny_grid, tmp_path):
    kwargs = dict(
        label="t", operations=("barrier", "reduce"), stacks=("srm",),
        tasks_per_node=2,
    )
    serial = collect_snapshot(jobs=1, **kwargs)
    parallel = collect_snapshot(jobs=4, **kwargs)
    serial_path = tmp_path / "serial.json"
    parallel_path = tmp_path / "parallel.json"
    write_snapshot(str(serial_path), serial)
    write_snapshot(str(parallel_path), parallel)
    assert serial_path.read_bytes() == parallel_path.read_bytes()


def test_snapshot_seeds_identical_under_both_paths(tiny_grid):
    kwargs = dict(operations=("barrier",), stacks=("srm",), tasks_per_node=2)
    serial = collect_snapshot(jobs=1, **kwargs)
    parallel = collect_snapshot(jobs=2, **kwargs)
    serial_seeds = [cell["seed"] for cell in serial["cells"]]
    parallel_seeds = [cell["seed"] for cell in parallel["cells"]]
    assert serial_seeds == parallel_seeds
    # And each seed is the documented pure function of the cell key.
    for cell in serial["cells"]:
        assert cell["seed"] == cell_seed(
            cell["operation"], cell["stack"], cell["nbytes"], cell["nodes"]
        )


# -- warm_cache -------------------------------------------------------------


def test_warm_cache_matches_direct_measure():
    clear_cache()
    direct = measure("srm", "barrier", 0, nodes=1, tasks_per_node=2)
    clear_cache()
    warmed = warm_cache(
        [("srm", "barrier", 0, 1, 2), ("srm", "barrier", 0, 1, 2)], jobs=1
    )
    assert warmed == 1  # duplicates collapse
    cached = measure("srm", "barrier", 0, nodes=1, tasks_per_node=2)
    assert cached.seconds == direct.seconds
    assert warm_cache([("srm", "barrier", 0, 1, 2)], jobs=1) == 0  # cache hit
    clear_cache()


# -- kernel self-benchmark --------------------------------------------------


def test_kernel_selfbench_document_shape():
    document = kernel_selfbench(width=4, rounds=40, repeats=2)
    assert document["kind"] == SELFBENCH_KIND
    assert document["events"] > 0
    assert document["events_per_second"] > 0
    assert len(document["runs"]) == 2
    # The workload is deterministic: every repeat drains the same events.
    assert len({run["events"] for run in document["runs"]}) == 1
    json.dumps(document)  # must serialize as-is


def test_cli_bench_self_writes_artifact(tmp_path, capsys):
    from repro.cli import main

    target = tmp_path / "KERNEL_selfbench.json"
    code = main(["bench", "--self", "--json-out", str(target)])
    out = capsys.readouterr().out
    assert code == 0
    assert "events/s" in out
    document = json.loads(target.read_text())
    assert document["kind"] == SELFBENCH_KIND
    assert document["events_per_second"] > 0
