"""Correctness + behaviour tests for the baseline MPI collective stacks."""

import numpy as np
import pytest

from repro.machine import ClusterSpec, Machine
from repro.mpi.collectives import IbmMpi, Mpich, MpiCollectives
from repro.mpi.ops import MAX, SUM


def make(Stack, nodes=2, tasks=4):
    machine = Machine(ClusterSpec(nodes=nodes, tasks_per_node=tasks), cost=Stack.tune_cost(
        Machine(ClusterSpec(nodes=1, tasks_per_node=1)).cost
    ))
    return machine, Stack(machine)


STACKS = [IbmMpi, Mpich]


# ---------------------------------------------------------------------------
# broadcast
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("Stack", STACKS)
@pytest.mark.parametrize("nbytes", [1, 1000, 10_000, 200_000])
def test_broadcast_delivers(Stack, nbytes):
    machine, stack = make(Stack)
    P = machine.spec.total_tasks
    reference = np.arange(nbytes, dtype=np.uint8)
    buffers = {r: (reference.copy() if r == 0 else np.zeros_like(reference)) for r in range(P)}

    def program(task):
        yield from stack.broadcast(task, buffers[task.rank], root=0)

    machine.launch(program)
    for buffer in buffers.values():
        assert np.array_equal(buffer, reference)


@pytest.mark.parametrize("Stack", STACKS)
@pytest.mark.parametrize("root", [0, 3, 7])
def test_broadcast_rotated_root(Stack, root):
    machine, stack = make(Stack)
    P = machine.spec.total_tasks
    reference = np.full(64, 9, np.uint8)
    buffers = {r: (reference.copy() if r == root else np.zeros_like(reference)) for r in range(P)}

    def program(task):
        yield from stack.broadcast(task, buffers[task.rank], root=root)

    machine.launch(program)
    for buffer in buffers.values():
        assert np.array_equal(buffer, reference)


# ---------------------------------------------------------------------------
# reduce
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("Stack", STACKS)
@pytest.mark.parametrize("count", [1, 100, 5000, 40_000])
def test_reduce_sum(Stack, count):
    machine, stack = make(Stack)
    P = machine.spec.total_tasks
    sources = {r: np.full(count, float(r + 1)) for r in range(P)}
    destination = np.zeros(count)

    def program(task):
        dst = destination if task.rank == 0 else None
        yield from stack.reduce(task, sources[task.rank], dst, SUM, root=0)

    machine.launch(program)
    assert np.all(destination == sum(range(1, P + 1)))


@pytest.mark.parametrize("Stack", STACKS)
def test_reduce_max_nonzero_root(Stack):
    machine, stack = make(Stack)
    P = machine.spec.total_tasks
    sources = {r: np.full(16, float(r)) for r in range(P)}
    destination = np.zeros(16)

    def program(task):
        dst = destination if task.rank == 5 else None
        yield from stack.reduce(task, sources[task.rank], dst, MAX, root=5)

    machine.launch(program)
    assert np.all(destination == P - 1)


def test_reduce_root_requires_destination():
    machine, stack = make(IbmMpi, nodes=1, tasks=2)

    def program(task):
        yield from stack.reduce(task, np.ones(4), None, SUM, root=0)

    with pytest.raises(ValueError):
        machine.launch(program)


# ---------------------------------------------------------------------------
# allreduce
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("Stack", STACKS)
@pytest.mark.parametrize("nodes,tasks", [(1, 2), (2, 4), (3, 3), (2, 5), (1, 7)])
def test_allreduce_all_shapes(Stack, nodes, tasks):
    machine, stack = make(Stack, nodes=nodes, tasks=tasks)
    P = machine.spec.total_tasks
    sources = {r: np.full(32, float(r + 1)) for r in range(P)}
    destinations = {r: np.zeros(32) for r in range(P)}

    def program(task):
        yield from stack.allreduce(task, sources[task.rank], destinations[task.rank], SUM)

    machine.launch(program)
    for destination in destinations.values():
        assert np.all(destination == sum(range(1, P + 1)))


def test_ibm_allreduce_switches_algorithm_by_size():
    machine, stack = make(IbmMpi, nodes=2, tasks=2)
    assert stack.allreduce_rd_max is not None
    small = np.ones(16)
    big = np.ones(stack.allreduce_rd_max // 8 + 100)
    outs = {r: (np.zeros_like(small), np.zeros_like(big)) for r in range(4)}

    def program(task):
        yield from stack.allreduce(task, small, outs[task.rank][0], SUM)
        yield from stack.allreduce(task, big, outs[task.rank][1], SUM)

    machine.launch(program)
    for small_out, big_out in outs.values():
        assert np.all(small_out == 4)
        assert np.all(big_out == 4)


def test_mpich_allreduce_is_reduce_plus_broadcast():
    assert Mpich.allreduce_algorithm == "reduce_broadcast"
    assert IbmMpi.allreduce_algorithm == "recursive_doubling"


def test_allreduce_size_mismatch_rejected():
    machine, stack = make(IbmMpi, nodes=1, tasks=2)

    def program(task):
        yield from stack.allreduce(task, np.ones(4), np.zeros(8), SUM)

    with pytest.raises(ValueError):
        machine.launch(program)


# ---------------------------------------------------------------------------
# barrier
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("Stack", STACKS)
@pytest.mark.parametrize("nodes,tasks", [(1, 1), (1, 4), (2, 4), (3, 3), (2, 7)])
def test_barrier_synchronizes(Stack, nodes, tasks):
    machine, stack = make(Stack, nodes=nodes, tasks=tasks)
    arrivals, releases = {}, {}

    def program(task):
        yield from task.compute(2e-6 * task.rank)
        arrivals[task.rank] = task.engine.now
        yield from stack.barrier(task)
        releases[task.rank] = task.engine.now

    machine.launch(program)
    assert min(releases.values()) >= max(arrivals.values())


@pytest.mark.parametrize("Stack", STACKS)
def test_repeated_barriers(Stack):
    machine, stack = make(Stack)

    def program(task):
        for _ in range(4):
            yield from stack.barrier(task)

    machine.launch(program)  # must not deadlock or mismatch tags


# ---------------------------------------------------------------------------
# stack identity / tuning
# ---------------------------------------------------------------------------


def test_stack_names():
    assert IbmMpi.name == "IBM MPI"
    assert Mpich.name == "MPICH"


def test_mpich_tuning_is_heavier():
    base = Machine(ClusterSpec(nodes=1, tasks_per_node=1)).cost
    tuned = Mpich.tune_cost(base)
    assert tuned.mpi_send_overhead > base.mpi_send_overhead
    assert tuned.eager_limits.limit_for(16) == tuned.eager_limits.limit_for(256)


def test_ibm_tuning_is_identity():
    base = Machine(ClusterSpec(nodes=1, tasks_per_node=1)).cost
    assert IbmMpi.tune_cost(base) == base


def test_trees_cached_per_root():
    machine, stack = make(IbmMpi)
    first = stack._tree(0)
    assert stack._tree(0) is first
    assert stack._tree(1) is not first


def test_srm_outperforms_baselines_smoke():
    # The paper's headline, in miniature: a small broadcast on 2x4.
    from repro.bench.runner import build, time_operation

    spec = ClusterSpec(nodes=2, tasks_per_node=4)
    times = {}
    for name in ("srm", "ibm", "mpich"):
        machine, stack = build(name, spec)
        times[name] = time_operation(machine, stack, "broadcast", 1024, repeats=2).seconds
    assert times["srm"] < times["ibm"] < times["mpich"]


@pytest.mark.parametrize("Stack", STACKS)
def test_singleton_job_all_operations(Stack):
    """P=1 must degrade every operation to a local copy (regression: the
    binomial reduce once tried to send to a None parent)."""
    machine, stack = make(Stack, nodes=1, tasks=1)
    src = np.arange(32, dtype=np.float64)
    dst = np.zeros(32)
    block_out = np.zeros(32, np.uint8)
    blocks = np.arange(32, dtype=np.uint8)
    wide = np.zeros(32, np.uint8)

    def program(task):
        yield from stack.broadcast(task, src, root=0)
        yield from stack.reduce(task, src, dst, SUM, root=0)
        yield from stack.allreduce(task, src, dst, SUM)
        yield from stack.barrier(task)
        yield from stack.scatter(task, blocks, block_out, root=0)
        yield from stack.gather(task, blocks, wide, root=0)
        yield from stack.allgather(task, blocks, wide)
        yield from stack.alltoall(task, blocks, block_out)
        yield from stack.scan(task, src, dst, SUM)
        yield from stack.reduce_scatter(task, src, dst, SUM)

    machine.launch(program)
    assert np.array_equal(dst, src)
    assert np.array_equal(wide, blocks)
