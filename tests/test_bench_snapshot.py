"""Tests for benchmark telemetry snapshots (capture, schema, determinism)."""

import json

import pytest

from repro.bench.snapshot import (
    bench_sizes as snapshot_sizes,
)
from repro.bench.snapshot import (
    SCHEMA_VERSION,
    SNAPSHOT_KIND,
    capture_cell,
    cell_key,
    collect_snapshot,
    load_snapshot,
    write_snapshot,
)
from repro.cli import main
from repro.errors import ConfigurationError


@pytest.fixture
def tiny_grid(monkeypatch):
    monkeypatch.setattr("repro.bench.snapshot.message_sizes", lambda: [512])
    monkeypatch.setattr("repro.bench.snapshot.processor_configs", lambda: [1, 2])


# -- grid -------------------------------------------------------------------


def test_bench_sizes_capped_at_1mb_by_default(monkeypatch):
    monkeypatch.delenv("REPRO_BENCH_FULL", raising=False)
    sizes = snapshot_sizes()
    assert max(sizes) == 1024 * 1024
    assert 8 in sizes


def test_bench_sizes_full_grid(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_FULL", "1")
    assert max(snapshot_sizes()) == 8 * 1024 * 1024


# -- capture ----------------------------------------------------------------


def test_capture_cell_srm_has_telemetry():
    cell = capture_cell("srm", "allreduce", 4096, nodes=2, tasks_per_node=2)
    assert cell["microseconds"] > 0
    assert cell["total_tasks"] == 4
    assert cell["metrics"]["task.copies"] > 0
    path = cell["critical_path"]
    assert path is not None
    assert path["phases_us"]
    # The walk partitions the timed window: attribution is essentially total.
    assert path["attributed_us"] == pytest.approx(path["total_us"], rel=1e-6)


def test_capture_cell_baseline_stack_records_substrate_only():
    # MPI baselines record substrate spans (copies, reduce-apply) but no SRM
    # protocol phases, so much of their critical path stays untracked.
    cell = capture_cell("ibm", "allreduce", 4096, nodes=2, tasks_per_node=2)
    assert cell["microseconds"] > 0
    path = cell["critical_path"]
    assert path is not None
    assert "(untracked)" in path["phases_us"]


def test_capture_cell_rejects_unknown_operation():
    with pytest.raises(ConfigurationError):
        capture_cell("srm", "transmogrify", 64, nodes=1, tasks_per_node=2)


# -- snapshot document ------------------------------------------------------


def test_collect_snapshot_document_shape(tiny_grid):
    snapshot = collect_snapshot(
        label="t", operations=("barrier", "reduce"), stacks=("srm",), tasks_per_node=2
    )
    assert snapshot["kind"] == SNAPSHOT_KIND
    assert snapshot["schema_version"] == SCHEMA_VERSION
    assert snapshot["label"] == "t"
    assert snapshot["grid"]["operations"] == ["barrier", "reduce"]
    # barrier is sized once (nbytes=0); reduce once per size.
    assert len(snapshot["cells"]) == 2 + 2
    keys = [cell_key(cell) for cell in snapshot["cells"]]
    assert keys == sorted(keys)


def test_collect_snapshot_is_deterministic(tiny_grid):
    first = collect_snapshot(label="t", operations=("reduce",), stacks=("srm",),
                             tasks_per_node=2)
    second = collect_snapshot(label="t", operations=("reduce",), stacks=("srm",),
                              tasks_per_node=2)
    assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)


def test_collect_snapshot_rejects_unknown_operation(tiny_grid):
    with pytest.raises(ConfigurationError):
        collect_snapshot(operations=("reduce", "gossip"))


def test_collect_snapshot_reports_progress(tiny_grid):
    seen = []
    collect_snapshot(operations=("barrier",), stacks=("srm",), tasks_per_node=2,
                     progress=seen.append)
    assert len(seen) == 2
    assert all("barrier srm" in line for line in seen)


# -- persistence ------------------------------------------------------------


def test_write_load_roundtrip(tiny_grid, tmp_path):
    snapshot = collect_snapshot(operations=("barrier",), stacks=("srm",),
                                tasks_per_node=2)
    target = tmp_path / "BENCH_t.json"
    write_snapshot(str(target), snapshot)
    assert load_snapshot(str(target)) == snapshot
    # Serialization is byte-stable: write twice, compare bytes.
    again = tmp_path / "BENCH_u.json"
    write_snapshot(str(again), snapshot)
    assert target.read_bytes() == again.read_bytes()


def test_load_rejects_non_snapshot(tmp_path):
    stray = tmp_path / "stray.json"
    stray.write_text(json.dumps({"rows": []}))
    with pytest.raises(ConfigurationError):
        load_snapshot(str(stray))


def test_load_rejects_missing_fields(tmp_path):
    crippled = tmp_path / "crippled.json"
    crippled.write_text(json.dumps({"kind": SNAPSHOT_KIND, "cells": []}))
    with pytest.raises(ConfigurationError):
        load_snapshot(str(crippled))


# -- CLI --------------------------------------------------------------------


def test_cli_bench_writes_snapshot(tiny_grid, tmp_path, capsys):
    target = tmp_path / "BENCH_head.json"
    code = main(["bench", "--ops", "barrier", "--json-out", str(target), "--quiet"])
    out = capsys.readouterr().out
    assert code == 0
    assert "wrote" in out and "cells" in out
    snapshot = load_snapshot(str(target))
    assert snapshot["label"] == "head"
    assert all(cell["operation"] == "barrier" for cell in snapshot["cells"])
