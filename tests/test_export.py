"""Tests for the CSV/JSON export of sweep results."""

import csv
import io
import json

import pytest

from repro.bench.export import collect_sweep, rows_from_measurements, to_csv, to_json
from repro.bench.runner import Measurement
from repro.bench.sweeps import clear_cache
from repro.cli import main


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


SAMPLE = [
    Measurement("srm", "broadcast", 1024, 32, 12.5e-6, 3),
    Measurement("ibm", "broadcast", 1024, 32, 25.0e-6, 3),
]


def test_rows_preserve_fields():
    rows = rows_from_measurements(SAMPLE)
    assert rows[0] == {
        "stack": "srm",
        "operation": "broadcast",
        "nbytes": 1024,
        "total_tasks": 32,
        "repeats": 3,
        "microseconds": pytest.approx(12.5),
    }


def test_csv_round_trips():
    text = to_csv(SAMPLE)
    parsed = list(csv.DictReader(io.StringIO(text)))
    assert len(parsed) == 2
    assert parsed[1]["stack"] == "ibm"
    assert float(parsed[0]["microseconds"]) == pytest.approx(12.5)


def test_json_round_trips():
    parsed = json.loads(to_json(SAMPLE))
    assert parsed[0]["operation"] == "broadcast"
    assert parsed[1]["microseconds"] == pytest.approx(25.0)


def test_collect_sweep_barrier_only(monkeypatch):
    # Shrink the grid so the test is quick.
    monkeypatch.setattr("repro.bench.export.processor_configs", lambda: [1])
    monkeypatch.setattr("repro.bench.export.message_sizes", lambda: [64])
    measurements = collect_sweep(operations=("barrier",), stacks=("srm", "ibm"))
    assert len(measurements) == 2
    assert {m.stack for m in measurements} == {"SRM", "IBM MPI"}


def test_collect_sweep_sized_operations(monkeypatch):
    monkeypatch.setattr("repro.bench.export.processor_configs", lambda: [1])
    monkeypatch.setattr("repro.bench.export.message_sizes", lambda: [64, 1024])
    measurements = collect_sweep(operations=("broadcast",), stacks=("srm",))
    assert len(measurements) == 2
    assert {m.nbytes for m in measurements} == {64, 1024}


def test_cli_export_stdout(monkeypatch, capsys):
    monkeypatch.setattr("repro.bench.export.processor_configs", lambda: [1])
    monkeypatch.setattr("repro.bench.export.message_sizes", lambda: [64])
    assert main(["export", "--ops", "barrier", "--format", "csv"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("stack,operation")
    assert "SRM" in out


def test_cli_export_file(monkeypatch, tmp_path, capsys):
    monkeypatch.setattr("repro.bench.export.processor_configs", lambda: [1])
    monkeypatch.setattr("repro.bench.export.message_sizes", lambda: [64])
    target = tmp_path / "sweep.json"
    assert main(["export", "--ops", "barrier", "--format", "json", "--out", str(target)]) == 0
    parsed = json.loads(target.read_text())
    assert all(row["operation"] == "barrier" for row in parsed)
    assert "wrote" in capsys.readouterr().out
