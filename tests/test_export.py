"""Tests for the CSV/JSON export of sweep results."""

import csv
import io
import json

import pytest

from repro.bench.export import (
    bench_identity as make_identity,
)
from repro.bench.export import (
    collect_sweep,
    identity_fingerprint,
    rows_from_measurements,
    to_csv,
    to_json,
)
from repro.bench.runner import Measurement
from repro.bench.sweeps import clear_cache
from repro.cli import main


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


SAMPLE = [
    Measurement("srm", "broadcast", 1024, 32, 12.5e-6, 3, nodes=2),
    Measurement("ibm", "broadcast", 1024, 32, 25.0e-6, 3, nodes=2),
]


def test_rows_preserve_fields():
    rows = rows_from_measurements(SAMPLE)
    assert rows[1] == {
        "stack": "srm",
        "operation": "broadcast",
        "nbytes": 1024,
        "nodes": 2,
        "total_tasks": 32,
        "repeats": 3,
        "microseconds": pytest.approx(12.5),
    }


def test_rows_sorted_by_op_stack_size_nodes():
    shuffled = [
        Measurement("srm", "reduce", 64, 4, 1e-6, 3, nodes=1),
        Measurement("srm", "broadcast", 1024, 4, 1e-6, 3, nodes=1),
        Measurement("srm", "broadcast", 64, 8, 1e-6, 3, nodes=2),
        Measurement("ibm", "broadcast", 64, 4, 1e-6, 3, nodes=1),
        Measurement("srm", "broadcast", 64, 4, 1e-6, 3, nodes=1),
    ]
    keys = [
        (row["operation"], row["stack"], row["nbytes"], row["nodes"])
        for row in rows_from_measurements(shuffled)
    ]
    assert keys == sorted(keys)


def test_identity_embeds_cost_model_and_config():
    identity = make_identity()
    assert identity["tasks_per_node"] == 16
    assert identity["srm_config"]["small_protocol_max"] == 64 * 1024
    assert "cost_model" in identity
    json.dumps(identity)  # nested dataclasses must flatten to plain JSON


def test_identity_fingerprint_is_stable_and_sensitive():
    identity = make_identity()
    assert identity_fingerprint(identity) == identity_fingerprint(make_identity())
    other = make_identity(tasks_per_node=4)
    assert identity_fingerprint(other) != identity_fingerprint(identity)


def test_csv_round_trips():
    text = to_csv(SAMPLE)
    comment, body = text.split("\n", 1)
    assert comment.startswith("# repro-bench identity ")
    parsed = list(csv.DictReader(io.StringIO(body)))
    assert len(parsed) == 2
    assert parsed[0]["stack"] == "ibm"
    assert float(parsed[1]["microseconds"]) == pytest.approx(12.5)


def test_json_round_trips():
    parsed = json.loads(to_json(SAMPLE))
    assert parsed["fingerprint"] == identity_fingerprint(parsed["identity"])
    rows = parsed["rows"]
    assert rows[0]["operation"] == "broadcast"
    assert rows[0]["microseconds"] == pytest.approx(25.0)


def test_collect_sweep_barrier_only(monkeypatch):
    # Shrink the grid so the test is quick.
    monkeypatch.setattr("repro.bench.export.processor_configs", lambda: [1])
    monkeypatch.setattr("repro.bench.export.message_sizes", lambda: [64])
    measurements = collect_sweep(operations=("barrier",), stacks=("srm", "ibm"))
    assert len(measurements) == 2
    assert {m.stack for m in measurements} == {"SRM", "IBM MPI"}


def test_collect_sweep_sized_operations(monkeypatch):
    monkeypatch.setattr("repro.bench.export.processor_configs", lambda: [1])
    monkeypatch.setattr("repro.bench.export.message_sizes", lambda: [64, 1024])
    measurements = collect_sweep(operations=("broadcast",), stacks=("srm",))
    assert len(measurements) == 2
    assert {m.nbytes for m in measurements} == {64, 1024}


def test_cli_export_stdout(monkeypatch, capsys):
    monkeypatch.setattr("repro.bench.export.processor_configs", lambda: [1])
    monkeypatch.setattr("repro.bench.export.message_sizes", lambda: [64])
    assert main(["export", "--ops", "barrier", "--format", "csv"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("# repro-bench identity ")
    assert out.splitlines()[1].startswith("operation,stack")
    assert "SRM" in out


def test_cli_export_file(monkeypatch, tmp_path, capsys):
    monkeypatch.setattr("repro.bench.export.processor_configs", lambda: [1])
    monkeypatch.setattr("repro.bench.export.message_sizes", lambda: [64])
    target = tmp_path / "sweep.json"
    assert main(["export", "--ops", "barrier", "--format", "json", "--out", str(target)]) == 0
    parsed = json.loads(target.read_text())
    assert all(row["operation"] == "barrier" for row in parsed["rows"])
    assert "wrote" in capsys.readouterr().out
