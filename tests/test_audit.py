"""Tests for the machine state auditor — and, through it, a leak check over
every collective operation of every stack."""

import numpy as np
import pytest

from repro.bench import build
from repro.machine import ClusterSpec, Machine
from repro.machine.audit import audit_machine
from repro.mpi.ops import SUM


def test_fresh_machine_is_clean():
    machine = Machine(ClusterSpec(nodes=2, tasks_per_node=2))
    report = audit_machine(machine)
    assert report.clean
    assert "clean" in str(report)


def test_detects_posted_receive_leak():
    machine = Machine(ClusterSpec(nodes=1, tasks_per_node=2))
    buffer = np.zeros(8, np.uint8)

    def program(task):
        request = task.mpi.irecv(1, 0, buffer)
        # Give the receive time to pass its matching overhead and post.
        yield task.engine.timeout(1e-4)
        del request  # never matched

    machine.launch(program, ranks=[0])
    report = audit_machine(machine, drain=False)
    assert not report.clean
    assert any("posted" in p for p in report.problems)


def test_detects_unexpected_message_leak():
    machine = Machine(ClusterSpec(nodes=1, tasks_per_node=2))

    def program(task):
        yield from task.mpi.send(1, np.ones(64, np.uint8), tag=9)

    machine.launch(program, ranks=[0])
    report = audit_machine(machine)
    assert any("unexpected" in p for p in report.problems)
    assert any("eager pool" in p for p in report.problems)  # credit still held


def test_totals_reported():
    machine, stack = build("srm", ClusterSpec(nodes=2, tasks_per_node=2))
    buffers = {r: np.zeros(1024, np.uint8) for r in range(4)}
    buffers[0][:] = 1

    def program(task):
        yield from stack.broadcast(task, buffers[task.rank], root=0)

    machine.launch(program)
    report = audit_machine(machine)
    assert report.clean, str(report)
    assert report.totals["puts"] >= 1
    assert report.totals["bytes_copied"] > 0


OPERATIONS = (
    "broadcast",
    "reduce",
    "allreduce",
    "barrier",
    "scatter",
    "gather",
    "allgather",
    "alltoall",
    "scan",
    "reduce_scatter",
)


@pytest.mark.parametrize("name", ["srm", "ibm", "mpich"])
@pytest.mark.parametrize("operation", OPERATIONS)
def test_no_leaks_after_each_operation(name, operation):
    """Every operation of every stack leaves the machine in steady state."""
    machine, stack = build(name, ClusterSpec(nodes=2, tasks_per_node=3))
    total = 6
    block = 128
    sources = {r: np.full(block, float(r + 1)) for r in range(total)}
    outs = {r: np.zeros(block) for r in range(total)}
    blockbufs = {r: np.full(block, r + 1, np.uint8) for r in range(total)}
    wide = {r: np.zeros(block * total, np.uint8) for r in range(total)}
    destination = np.zeros(block)
    fullsend = np.arange(block * total, dtype=np.uint8)

    def program(task):
        if operation == "broadcast":
            yield from stack.broadcast(task, blockbufs[task.rank], root=0)
        elif operation == "reduce":
            dst = destination if task.rank == 0 else None
            yield from stack.reduce(task, sources[task.rank], dst, SUM, root=0)
        elif operation == "allreduce":
            yield from stack.allreduce(task, sources[task.rank], outs[task.rank], SUM)
        elif operation == "barrier":
            yield from stack.barrier(task)
        elif operation == "scatter":
            src = fullsend if task.rank == 0 else None
            yield from stack.scatter(task, src, blockbufs[task.rank], root=0)
        elif operation == "gather":
            dst = wide[0] if task.rank == 0 else None
            yield from stack.gather(task, blockbufs[task.rank], dst, root=0)
        elif operation == "allgather":
            yield from stack.allgather(task, blockbufs[task.rank], wide[task.rank])
        elif operation == "alltoall":
            yield from stack.alltoall(task, wide[task.rank], np.zeros(block * total, np.uint8))
        elif operation == "scan":
            yield from stack.scan(task, sources[task.rank], outs[task.rank], SUM)
        else:
            yield from stack.reduce_scatter(task, np.ones(block * total), np.zeros(block), SUM)

    machine.launch(program)
    report = audit_machine(machine)
    assert report.clean, f"{name}/{operation}: {report}"


def test_no_leaks_after_mixed_group_work():
    from repro.core import SRM

    machine = Machine(ClusterSpec(nodes=4, tasks_per_node=2))
    members = [0, 2, 5, 7]
    srm = SRM(machine, group=members)
    sources = {r: np.full(64, float(r)) for r in members}
    outs = {r: np.zeros(64) for r in members}

    def program(task):
        for _ in range(2):
            yield from srm.allreduce(task, sources[task.rank], outs[task.rank], SUM)
            yield from srm.barrier(task)

    machine.launch(program, ranks=members)
    report = audit_machine(machine)
    assert report.clean, str(report)
