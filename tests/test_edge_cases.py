"""Edge cases and failure paths across the library surface."""

import numpy as np
import pytest

from repro.bench import build
from repro.core import SRM, SRMConfig
from repro.errors import ConfigurationError, ProtocolError
from repro.machine import ClusterSpec, CostModel, Machine
from repro.mpi.ops import SUM


# ---------------------------------------------------------------------------
# degenerate shapes
# ---------------------------------------------------------------------------


def test_single_rank_srm_everything():
    machine, srm = build("srm", ClusterSpec(nodes=1, tasks_per_node=1))
    src = np.arange(64, dtype=np.float64)
    dst = np.zeros(64)

    def program(task):
        yield from srm.broadcast(task, src, root=0)
        yield from srm.reduce(task, src, dst, SUM, root=0)
        yield from srm.allreduce(task, src, dst, SUM)
        yield from srm.barrier(task)
        yield from srm.scan(task, src, dst, SUM)

    machine.launch(program)
    assert np.array_equal(dst, src)


def test_two_ranks_same_node():
    machine, srm = build("srm", ClusterSpec(nodes=1, tasks_per_node=2))
    payload = np.full(10_000, 3, np.uint8)
    buffers = {0: payload.copy(), 1: np.zeros(10_000, np.uint8)}

    def program(task):
        yield from srm.broadcast(task, buffers[task.rank], root=0)

    machine.launch(program)
    assert np.array_equal(buffers[1], payload)


def test_two_ranks_different_nodes():
    machine, srm = build("srm", ClusterSpec(nodes=2, tasks_per_node=1))
    payload = np.full(10_000, 4, np.uint8)
    buffers = {0: payload.copy(), 1: np.zeros(10_000, np.uint8)}

    def program(task):
        yield from srm.broadcast(task, buffers[task.rank], root=0)

    machine.launch(program)
    assert np.array_equal(buffers[1], payload)


def test_maximally_skewed_node_sizes():
    # One fat node plus singletons.
    machine = Machine(ClusterSpec(nodes=3, tasks_per_node=[8, 1, 1]))
    srm = SRM(machine)
    total = 10
    sources = {r: np.full(128, float(r + 1)) for r in range(total)}
    outs = {r: np.zeros(128) for r in range(total)}

    def program(task):
        yield from srm.allreduce(task, sources[task.rank], outs[task.rank], SUM)

    machine.launch(program)
    assert all(np.all(outs[r] == 55) for r in range(total))


def test_message_of_one_byte_everywhere():
    for name in ("srm", "ibm", "mpich"):
        machine, stack = build(name, ClusterSpec(nodes=2, tasks_per_node=2))
        buffers = {r: np.zeros(1, np.uint8) for r in range(4)}
        buffers[0][0] = 200

        def program(task):
            yield from stack.broadcast(task, buffers[task.rank], root=0)

        machine.launch(program)
        assert all(buffers[r][0] == 200 for r in range(4))


# ---------------------------------------------------------------------------
# odd dtypes
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("dtype", [np.int8, np.int16, np.float32, np.complex128])
def test_reduce_arbitrary_dtypes(dtype):
    machine, srm = build("srm", ClusterSpec(nodes=2, tasks_per_node=2))
    sources = {r: np.full(16, r + 1, dtype=dtype) for r in range(4)}
    destination = np.zeros(16, dtype=dtype)

    def program(task):
        dst = destination if task.rank == 0 else None
        yield from srm.reduce(task, sources[task.rank], dst, SUM, root=0)

    machine.launch(program)
    assert np.all(destination == np.asarray(10, dtype=dtype))


def test_broadcast_multidimensional_buffer():
    machine, srm = build("srm", ClusterSpec(nodes=2, tasks_per_node=2))
    payload = np.arange(600, dtype=np.float64).reshape(20, 30)
    buffers = {r: (payload.copy() if r == 0 else np.zeros((20, 30))) for r in range(4)}

    def program(task):
        yield from srm.broadcast(task, buffers[task.rank], root=0)

    machine.launch(program)
    for buffer in buffers.values():
        assert np.array_equal(buffer, payload)


# ---------------------------------------------------------------------------
# configuration extremes
# ---------------------------------------------------------------------------


def test_tiny_pipeline_chunks_still_correct():
    config = SRMConfig(pipeline_chunk=256, pipeline_min=256)
    machine, srm = build("srm", ClusterSpec(nodes=2, tasks_per_node=2), srm_config=config)
    payload = np.random.default_rng(0).integers(0, 255, 20_000).astype(np.uint8)
    buffers = {r: (payload.copy() if r == 0 else np.zeros_like(payload)) for r in range(4)}

    def program(task):
        yield from srm.broadcast(task, buffers[task.rank], root=0)

    machine.launch(program)
    for buffer in buffers.values():
        assert np.array_equal(buffer, payload)


def test_degenerate_switch_point_everything_large():
    config = SRMConfig(small_protocol_max=8 * 1024, pipeline_min=8 * 1024)
    machine, srm = build("srm", ClusterSpec(nodes=2, tasks_per_node=2), srm_config=config)
    payload = np.full(12 * 1024, 5, np.uint8)  # just above the switch
    buffers = {r: (payload.copy() if r == 0 else np.zeros_like(payload)) for r in range(4)}

    def program(task):
        yield from srm.broadcast(task, buffers[task.rank], root=0)

    machine.launch(program)
    for buffer in buffers.values():
        assert np.array_equal(buffer, payload)


def test_extreme_cost_models_keep_correctness():
    # A pathological machine (slow bus, fast net) must not change results.
    cost = CostModel.ibm_sp_colony().evolve(
        memory_bus_bandwidth=50e6,
        sm_copy_bandwidth=40e6,
        net_bandwidth=2000e6,
        net_latency=1e-6,
    )
    machine = Machine(ClusterSpec(nodes=2, tasks_per_node=4), cost=cost)
    srm = SRM(machine)
    sources = {r: np.full(512, float(r)) for r in range(8)}
    outs = {r: np.zeros(512) for r in range(8)}

    def program(task):
        yield from srm.allreduce(task, sources[task.rank], outs[task.rank], SUM)

    machine.launch(program)
    assert all(np.all(outs[r] == 28) for r in range(8))


# ---------------------------------------------------------------------------
# misuse
# ---------------------------------------------------------------------------


def test_copy_between_mismatched_views_rejected():
    machine = Machine(ClusterSpec(nodes=1, tasks_per_node=1))

    def program(task):
        yield from task.copy(np.zeros(10), np.zeros(11))

    with pytest.raises(ProtocolError):
        machine.launch(program)


def test_group_root_outside_group_rejected():
    machine = Machine(ClusterSpec(nodes=2, tasks_per_node=2))
    srm = SRM(machine, group=[0, 1])

    def program(task):
        yield from srm.broadcast(task, np.zeros(8, np.uint8), root=3)

    with pytest.raises(ConfigurationError):
        machine.launch(program, ranks=[0, 1])


def test_put_window_one_is_legal():
    config = SRMConfig(put_window=1)
    machine, srm = build("srm", ClusterSpec(nodes=2, tasks_per_node=1), srm_config=config)
    payload = np.full(200_000, 9, np.uint8)
    buffers = {0: payload.copy(), 1: np.zeros_like(payload)}

    def program(task):
        yield from srm.broadcast(task, buffers[task.rank], root=0)

    machine.launch(program)
    assert np.array_equal(buffers[1], payload)
