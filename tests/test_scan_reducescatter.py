"""Tests for the scan and reduce_scatter extension operations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import build
from repro.core import SRM
from repro.errors import ConfigurationError
from repro.machine import ClusterSpec, Machine
from repro.machine.audit import audit_machine
from repro.mpi.ops import MAX, SUM

STACKS = ("srm", "ibm", "mpich")


def run_scan(machine, stack, sources, op=SUM):
    total = machine.spec.total_tasks
    outs = {r: np.zeros_like(sources[r]) for r in range(total)}

    def program(task):
        yield from stack.scan(task, sources[task.rank], outs[task.rank], op)

    machine.launch(program)
    return outs


# ---------------------------------------------------------------------------
# scan
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", STACKS)
@pytest.mark.parametrize("nodes,tasks", [(1, 4), (2, 3), (3, 2), (4, 1)])
def test_scan_prefixes(name, nodes, tasks):
    machine, stack = build(name, ClusterSpec(nodes=nodes, tasks_per_node=tasks))
    total = machine.spec.total_tasks
    rng = np.random.default_rng(7)
    sources = {r: rng.random(200) for r in range(total)}
    outs = run_scan(machine, stack, sources)
    running = np.zeros(200)
    for rank in range(total):
        running = running + sources[rank]
        assert np.allclose(outs[rank], running), f"{name} rank {rank}"


@pytest.mark.parametrize("name", STACKS)
def test_scan_max_operator(name):
    machine, stack = build(name, ClusterSpec(nodes=2, tasks_per_node=2))
    sources = {r: np.full(16, float((r * 13) % 7)) for r in range(4)}
    outs = run_scan(machine, stack, sources, op=MAX)
    best = np.full(16, -np.inf)
    for rank in range(4):
        best = np.maximum(best, sources[rank])
        assert np.allclose(outs[rank], best)


def test_scan_large_message_chunks():
    machine, stack = build("srm", ClusterSpec(nodes=3, tasks_per_node=2))
    rng = np.random.default_rng(1)
    sources = {r: rng.random(50_000) for r in range(6)}
    outs = run_scan(machine, stack, sources)
    running = np.zeros(50_000)
    for rank in range(6):
        running = running + sources[rank]
        assert np.allclose(outs[rank], running)
    assert audit_machine(machine).clean


def test_scan_repeated_calls():
    machine, stack = build("srm", ClusterSpec(nodes=2, tasks_per_node=2))
    for call in range(3):
        sources = {r: np.full(64, float(call * 4 + r + 1)) for r in range(4)}
        outs = run_scan(machine, stack, sources)
        running = 0.0
        for rank in range(4):
            running += call * 4 + rank + 1
            assert np.all(outs[rank] == running), f"call {call} rank {rank}"


def test_scan_single_rank():
    machine, stack = build("srm", ClusterSpec(nodes=1, tasks_per_node=1))
    out = run_scan(machine, stack, {0: np.full(8, 3.0)})
    assert np.all(out[0] == 3.0)


def test_scan_group():
    machine = Machine(ClusterSpec(nodes=4, tasks_per_node=2))
    members = [1, 2, 4, 7]
    srm = SRM(machine, group=members)
    sources = {r: np.full(32, float(r)) for r in members}
    outs = {r: np.zeros(32) for r in members}

    def program(task):
        yield from srm.scan(task, sources[task.rank], outs[task.rank], SUM)

    machine.launch(program, ranks=members)
    running = 0.0
    for rank in members:
        running += rank
        assert np.all(outs[rank] == running)


def test_scan_size_mismatch_rejected():
    machine, stack = build("srm", ClusterSpec(nodes=1, tasks_per_node=2))

    def program(task):
        yield from stack.scan(task, np.zeros(4), np.zeros(8), SUM)

    with pytest.raises(ConfigurationError):
        machine.launch(program)


def test_srm_scan_faster_than_linear_chain():
    """Hierarchy pays off: the SRM scan crosses the network once per node;
    the baseline chain crosses it once per rank-boundary."""

    def timed(name):
        machine, stack = build(name, ClusterSpec(nodes=4, tasks_per_node=8))
        sources = {r: np.ones(512) for r in range(32)}
        run_scan(machine, stack, sources)
        start = machine.now
        run_scan(machine, stack, sources)
        return machine.now - start

    assert timed("srm") < timed("ibm")


@given(seed=st.integers(0, 5000), count=st.integers(1, 20_000))
@settings(max_examples=15, deadline=None)
def test_scan_property(seed, count):
    machine, stack = build("srm", ClusterSpec(nodes=2, tasks_per_node=3))
    rng = np.random.default_rng(seed)
    sources = {r: rng.integers(-50, 50, count).astype(np.int64) for r in range(6)}
    outs = run_scan(machine, stack, sources)
    running = np.zeros(count, np.int64)
    for rank in range(6):
        running = running + sources[rank]
        assert np.array_equal(outs[rank], running)


# ---------------------------------------------------------------------------
# reduce_scatter
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", STACKS)
def test_reduce_scatter_blocks(name):
    machine, stack = build(name, ClusterSpec(nodes=2, tasks_per_node=3))
    total = 6
    block = 20
    rng = np.random.default_rng(11)
    sources = {r: rng.random(block * total) for r in range(total)}
    outs = {r: np.zeros(block) for r in range(total)}

    def program(task):
        yield from stack.reduce_scatter(task, sources[task.rank], outs[task.rank], SUM)

    machine.launch(program)
    full = np.sum(np.stack(list(sources.values())), axis=0)
    for rank in range(total):
        assert np.allclose(outs[rank], full[rank * block : (rank + 1) * block]), f"{name}"


def test_reduce_scatter_size_validation():
    machine, stack = build("srm", ClusterSpec(nodes=1, tasks_per_node=2))

    def program(task):
        yield from stack.reduce_scatter(task, np.zeros(10), np.zeros(3), SUM)

    with pytest.raises(ValueError):
        machine.launch(program)


def test_reduce_scatter_group():
    machine = Machine(ClusterSpec(nodes=2, tasks_per_node=4))
    members = [0, 3, 5, 6]
    srm = SRM(machine, group=members)
    block = 8
    sources = {r: np.arange(block * 4, dtype=np.float64) * (r + 1) for r in members}
    outs = {r: np.zeros(block) for r in members}

    def program(task):
        yield from srm.reduce_scatter(task, sources[task.rank], outs[task.rank], SUM)

    machine.launch(program, ranks=members)
    full = np.sum(np.stack([sources[r] for r in members]), axis=0)
    for index, rank in enumerate(members):
        assert np.allclose(outs[rank], full[index * block : (index + 1) * block])
