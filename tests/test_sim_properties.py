"""Property-based tests for the simulation kernel's core guarantees."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Engine, FifoResource, SharedBandwidth


@given(delays=st.lists(st.floats(0.0, 100.0, allow_nan=False), min_size=1, max_size=40))
@settings(max_examples=60, deadline=None)
def test_timeouts_fire_in_nondecreasing_time_order(delays):
    engine = Engine()
    fired = []
    for delay in delays:
        engine.timeout(delay, value=delay).add_callback(lambda e: fired.append(engine.now))
    engine.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
    assert engine.now == max(delays)


@given(
    delays=st.lists(st.floats(0.001, 10.0, allow_nan=False), min_size=1, max_size=20),
    seed=st.integers(0, 100),
)
@settings(max_examples=40, deadline=None)
def test_simulation_is_a_pure_function_of_inputs(delays, seed):
    def run():
        engine = Engine()
        trace = []

        def worker(ident, delay):
            yield engine.timeout(delay)
            trace.append((round(engine.now, 12), ident))
            yield engine.timeout(delay / 2)
            trace.append((round(engine.now, 12), ident))

        for ident, delay in enumerate(delays):
            engine.process(worker(ident, delay))
        engine.run()
        return trace

    assert run() == run()
    del seed


@given(
    sizes=st.lists(st.floats(1.0, 1e6, allow_nan=False), min_size=1, max_size=15),
    rate=st.floats(10.0, 1e9, allow_nan=False),
)
@settings(max_examples=50, deadline=None)
def test_shared_bandwidth_conserves_work(sizes, rate):
    """However transfers interleave, the link finishes all bytes no earlier
    than total/rate and completes every transfer."""
    engine = Engine()
    link = SharedBandwidth(engine, rate=rate)
    done = [link.transfer(size) for size in sizes]
    engine.run(until=engine.all_of(done))
    total = sum(sizes)
    assert engine.now >= total / rate * (1 - 1e-9)
    # Fluid sharing of simultaneous arrivals finishes exactly at total/rate
    # if nothing is capped (work conservation).
    assert engine.now <= total / rate * (1 + 1e-6)
    assert link.active_transfers == 0
    assert link.bytes_transferred >= total * (1 - 1e-9)


@given(
    sizes=st.lists(st.floats(1.0, 1e5, allow_nan=False), min_size=2, max_size=10),
    cap_fraction=st.floats(0.1, 1.0),
)
@settings(max_examples=40, deadline=None)
def test_shared_bandwidth_caps_respected(sizes, cap_fraction):
    """With per-transfer caps, no transfer finishes faster than size/cap."""
    engine = Engine()
    rate = 1000.0
    cap = rate * cap_fraction
    link = SharedBandwidth(engine, rate=rate)
    finish = {}

    def runner(index, size):
        yield link.transfer(size, max_rate=cap)
        finish[index] = engine.now

    for index, size in enumerate(sizes):
        engine.process(runner(index, size))
    engine.run()
    for index, size in enumerate(sizes):
        assert finish[index] >= size / cap * (1 - 1e-9)


@given(
    holders=st.lists(st.floats(0.01, 5.0, allow_nan=False), min_size=1, max_size=12),
    capacity=st.integers(1, 4),
)
@settings(max_examples=40, deadline=None)
def test_fifo_resource_never_exceeds_capacity(holders, capacity):
    engine = Engine()
    resource = FifoResource(engine, capacity=capacity)
    concurrency = {"now": 0, "peak": 0}

    def worker(hold):
        yield resource.request()
        concurrency["now"] += 1
        concurrency["peak"] = max(concurrency["peak"], concurrency["now"])
        yield engine.timeout(hold)
        concurrency["now"] -= 1
        resource.release()

    for hold in holders:
        engine.process(worker(hold))
    engine.run()
    assert concurrency["peak"] <= capacity
    assert concurrency["now"] == 0
    assert resource.in_use == 0
