"""Unit tests for the discrete-event engine core."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.sim import Engine


def test_clock_starts_at_zero():
    assert Engine().now == 0.0


def test_clock_custom_start():
    assert Engine(start_time=5.0).now == 5.0


def test_timeout_advances_clock():
    engine = Engine()
    engine.timeout(2.5)
    engine.run()
    assert engine.now == 2.5


def test_run_until_time_stops_early():
    engine = Engine()
    engine.timeout(1.0)
    engine.timeout(10.0)
    engine.run(until=5.0)
    assert engine.now == 5.0


def test_run_until_past_time_raises():
    engine = Engine()
    engine.run(until=3.0)
    with pytest.raises(SimulationError):
        engine.run(until=1.0)


def test_events_fire_in_time_order():
    engine = Engine()
    seen = []
    for delay in (3.0, 1.0, 2.0):
        engine.timeout(delay, value=delay).add_callback(lambda e: seen.append(e.value))
    engine.run()
    assert seen == [1.0, 2.0, 3.0]


def test_same_time_events_fire_in_schedule_order():
    engine = Engine()
    seen = []
    for label in "abcd":
        engine.timeout(1.0, value=label).add_callback(lambda e: seen.append(e.value))
    engine.run()
    assert seen == ["a", "b", "c", "d"]


def test_negative_timeout_rejected():
    engine = Engine()
    with pytest.raises(SimulationError):
        engine.timeout(-0.1)


def test_run_until_event_returns_value():
    engine = Engine()

    def program():
        yield engine.timeout(1.0)
        return 42

    result = engine.run(until=engine.process(program()))
    assert result == 42
    assert engine.now == 1.0


def test_run_until_event_never_fires_is_deadlock():
    engine = Engine()
    orphan = engine.event()

    def program():
        yield orphan

    process = engine.process(program())
    with pytest.raises(DeadlockError):
        engine.run(until=process)


def test_step_on_empty_queue_raises():
    with pytest.raises(DeadlockError):
        Engine().step()


def test_peek_reports_next_event_time():
    engine = Engine()
    assert engine.peek() == float("inf")
    engine.timeout(4.0)
    assert engine.peek() == 4.0


def test_call_at_runs_callback_at_time():
    engine = Engine()
    stamps = []
    engine.call_at(2.0, lambda: stamps.append(engine.now))
    engine.run()
    assert stamps == [2.0]


def test_call_at_in_past_raises():
    engine = Engine(start_time=10.0)
    with pytest.raises(SimulationError):
        engine.call_at(5.0, lambda: None)


def test_events_processed_counter():
    engine = Engine()
    engine.timeout(1.0)
    engine.timeout(2.0)
    engine.run()
    assert engine.events_processed == 2


def test_run_until_event_mid_batch_leaves_rest_queued():
    # Four same-time events; stopping on the second must leave the other
    # two queued (batched popping pushes unfired entries back untouched).
    engine = Engine()
    seen = []
    timers = [engine.timeout(1.0, value=label) for label in "abcd"]
    for timer in timers:
        timer.add_callback(lambda e: seen.append(e.value))
    engine.run(until=timers[1])
    assert seen == ["a", "b"]
    assert engine.events_processed == 2
    assert engine.peek() == 1.0  # c and d still queued at their time
    engine.run()
    assert seen == ["a", "b", "c", "d"]
    assert engine.events_processed == 4


def test_callback_exception_mid_batch_preserves_queue():
    class Boom(Exception):
        pass

    engine = Engine()
    seen = []
    first = engine.timeout(1.0, value="a")
    first.add_callback(lambda e: seen.append(e.value))
    bad = engine.event()
    bad.fail(Boom(), delay=1.0)
    last = engine.timeout(1.0, value="c")
    last.add_callback(lambda e: seen.append(e.value))
    target = engine.timeout(2.0)
    with pytest.raises(Boom):
        engine.run(until=target)
    assert seen == ["a"]  # the raise stopped the batch after "a" and bad
    engine.run()  # "c" went back to the queue with its original key
    assert seen == ["a", "c"]
    assert engine.now == 2.0


def test_callback_scheduled_same_time_event_lands_in_later_batch():
    engine = Engine()
    seen = []

    def chain(event):
        seen.append(event.value)
        engine.timeout(0.0, value="late").add_callback(lambda e: seen.append(e.value))

    engine.timeout(1.0, value="first").add_callback(chain)
    engine.timeout(1.0, value="second").add_callback(lambda e: seen.append(e.value))
    done = engine.timeout(2.0)
    engine.run(until=done)
    # "late" fires at t=1.0 too, but with a later sequence number — after
    # everything scheduled before it, exactly as one-at-a-time stepping.
    assert seen == ["first", "second", "late"]


def test_deadlock_error_names_blocked_processes():
    engine = Engine()
    orphan = engine.event(name="never-fires")

    def waiter():
        yield orphan

    target = engine.process(waiter(), name="stuck-rank3")
    with pytest.raises(DeadlockError) as excinfo:
        engine.run(until=target)
    message = str(excinfo.value)
    assert "stuck-rank3" in message
    assert "never-fires" in message
    assert "blocked forever" in message
    assert "1 process(es)" in message


def test_deadlock_error_lists_every_waiter_and_its_event():
    engine = Engine()
    gates = {name: engine.event(name=f"gate-{name}") for name in ("a", "b")}

    def waiter(name):
        yield gates[name]

    for name in gates:
        engine.process(waiter(name), name=f"proc-{name}")
    done = engine.timeout(1.0)
    engine.run(until=done)  # both processes park on their gates
    with pytest.raises(DeadlockError) as excinfo:
        engine.step()  # queue is now empty, two processes still blocked
    message = str(excinfo.value)
    assert "2 process(es)" in message
    for name in gates:
        assert f"proc-{name}" in message
        assert f"gate-{name}" in message


def test_deadlock_error_excludes_finished_processes():
    engine = Engine()
    orphan = engine.event(name="orphan")

    def quick():
        yield engine.timeout(0.5)

    def stuck():
        yield orphan

    engine.process(quick(), name="finished-fine")
    target = engine.process(stuck(), name="still-waiting")
    with pytest.raises(DeadlockError) as excinfo:
        engine.run(until=target)
    message = str(excinfo.value)
    assert "still-waiting" in message
    assert "finished-fine" not in message


def test_empty_queue_deadlock_without_processes_is_bare():
    with pytest.raises(DeadlockError) as excinfo:
        Engine().step()
    assert "blocked" not in str(excinfo.value)  # nothing to name


def test_process_registry_prunes_dead_processes():
    engine = Engine()

    def quick():
        yield engine.timeout(0.1)

    for index in range(200):
        engine.process(quick(), name=f"p{index}")
        engine.run()
    # Amortized pruning keeps the weak registry from growing one entry per
    # short-lived process forever (the launch loops create thousands).
    assert len(engine._processes) < 200
    assert engine.blocked_processes() == []


def test_determinism_same_program_same_trace():
    def trace_run():
        engine = Engine()
        trace = []

        def worker(ident, delay):
            yield engine.timeout(delay)
            trace.append((engine.now, ident))
            yield engine.timeout(delay * 2)
            trace.append((engine.now, ident))

        for ident in range(5):
            engine.process(worker(ident, 0.5 + ident * 0.25))
        engine.run()
        return trace

    assert trace_run() == trace_run()
