"""Unit tests for events, conditions, and process semantics."""

import pytest

from repro.errors import SimulationError
from repro.sim import Engine


class Boom(Exception):
    pass


def test_event_triggers_once():
    engine = Engine()
    event = engine.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)
    with pytest.raises(SimulationError):
        event.fail(Boom())


def test_event_value_before_trigger_raises():
    engine = Engine()
    event = engine.event()
    with pytest.raises(SimulationError):
        _ = event.value
    with pytest.raises(SimulationError):
        _ = event.ok


def test_fail_requires_exception_instance():
    engine = Engine()
    with pytest.raises(SimulationError):
        engine.event().fail("not an exception")  # type: ignore[arg-type]


def test_unhandled_failed_event_crashes_run():
    engine = Engine()
    engine.event().fail(Boom("nobody caught me"))
    with pytest.raises(Boom):
        engine.run()


def test_defused_failed_event_is_silent():
    engine = Engine()
    event = engine.event()
    event.fail(Boom())
    event.defuse()
    engine.run()  # must not raise


def test_process_receives_event_value():
    engine = Engine()
    received = []

    def program():
        value = yield engine.timeout(1.0, value="payload")
        received.append(value)

    engine.run(until=engine.process(program()))
    assert received == ["payload"]


def test_process_exception_thrown_at_yield_point():
    engine = Engine()
    event = engine.event()
    caught = []

    def failer():
        yield engine.timeout(1.0)
        event.fail(Boom("kapow"))

    def waiter():
        try:
            yield event
        except Boom as exc:
            caught.append(str(exc))

    engine.process(failer())
    engine.run(until=engine.process(waiter()))
    assert caught == ["kapow"]


def test_process_join_returns_child_value():
    engine = Engine()

    def child():
        yield engine.timeout(2.0)
        return "child-result"

    def parent():
        result = yield engine.process(child())
        return result

    assert engine.run(until=engine.process(parent())) == "child-result"


def test_process_failure_propagates_to_joiner():
    engine = Engine()

    def child():
        yield engine.timeout(1.0)
        raise Boom("from child")

    def parent():
        with pytest.raises(Boom):
            yield engine.process(child())
        return "handled"

    assert engine.run(until=engine.process(parent())) == "handled"


def test_unjoined_process_failure_crashes_run():
    engine = Engine()

    def child():
        yield engine.timeout(1.0)
        raise Boom()

    engine.process(child())
    with pytest.raises(Boom):
        engine.run()


def test_yielding_non_event_fails_process():
    engine = Engine()

    def bad():
        yield 42  # type: ignore[misc]

    process = engine.process(bad())
    with pytest.raises(SimulationError):
        engine.run(until=process)


def test_process_requires_generator():
    engine = Engine()
    with pytest.raises(SimulationError):
        engine.process(lambda: None)  # type: ignore[arg-type]


def test_subgenerator_composition_with_yield_from():
    engine = Engine()

    def inner(duration):
        yield engine.timeout(duration)
        return duration * 2

    def outer():
        first = yield from inner(1.0)
        second = yield from inner(2.0)
        return first + second

    assert engine.run(until=engine.process(outer())) == 6.0
    assert engine.now == 3.0


def test_all_of_collects_values_in_order():
    engine = Engine()
    condition = engine.all_of(
        [engine.timeout(3.0, value="c"), engine.timeout(1.0, value="a"), engine.timeout(2.0, value="b")]
    )
    assert engine.run(until=condition) == ["c", "a", "b"]
    assert engine.now == 3.0


def test_all_of_empty_fires_immediately():
    engine = Engine()
    condition = engine.all_of([])
    engine.run(until=condition)
    assert engine.now == 0.0


def test_all_of_fails_fast_on_child_failure():
    engine = Engine()
    bad = engine.event()
    bad.fail(Boom(), delay=1.0)
    condition = engine.all_of([engine.timeout(10.0), bad])
    with pytest.raises(Boom):
        engine.run(until=condition)
    assert engine.now == 1.0


def test_any_of_returns_first_index_and_value():
    engine = Engine()
    condition = engine.any_of([engine.timeout(5.0, value="slow"), engine.timeout(1.0, value="fast")])
    assert engine.run(until=condition) == (1, "fast")
    assert engine.now == 1.0


def test_any_of_empty_rejected():
    engine = Engine()
    with pytest.raises(SimulationError):
        engine.any_of([])


def test_condition_rejects_cross_engine_events():
    one, two = Engine(), Engine()
    with pytest.raises(SimulationError):
        one.all_of([two.timeout(1.0)])


def test_callback_on_processed_event_rejected():
    engine = Engine()
    timer = engine.timeout(1.0)
    engine.run()
    with pytest.raises(SimulationError):
        timer.add_callback(lambda e: None)


def test_callbacks_property_reflects_lazy_storage():
    engine = Engine()
    event = engine.event()
    assert event.callbacks == []
    first, second, third = (lambda e: None), (lambda e: None), (lambda e: None)
    event.add_callback(first)
    assert event.callbacks == [first]
    event.add_callback(second)
    event.add_callback(third)
    assert event.callbacks == [first, second, third]
    event.callbacks.append("intruder")  # snapshots are detached copies
    assert event.callbacks == [first, second, third]
    event.succeed()
    engine.run()
    assert event.callbacks is None  # matches the processed-event contract


def test_all_callbacks_run_in_add_order():
    engine = Engine()
    seen = []
    timer = engine.timeout(1.0)
    for tag in range(4):  # exercises the _cb0 slot plus the overflow list
        timer.add_callback(lambda e, tag=tag: seen.append(tag))
    engine.run()
    assert seen == [0, 1, 2, 3]


def test_any_of_duplicate_event_reports_first_index():
    engine = Engine()
    timer = engine.timeout(1.0, value="x")
    condition = engine.any_of([timer, timer])
    assert engine.run(until=condition) == (0, "x")


def test_process_waiting_on_introspection():
    engine = Engine()
    gate = engine.event()

    def program():
        yield gate

    process = engine.process(program())
    engine.run(until=1.0)
    assert process.waiting_on is gate
    assert process.is_alive
    gate.succeed()
    engine.run()
    assert not process.is_alive
