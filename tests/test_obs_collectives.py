"""Phase spans, flows, and critical-path coverage for the extension
collectives (scatter / gather / allgather / alltoall / scan / ring
allreduce) — the operations instrumented after the core four."""

import numpy as np
import pytest

from repro.bench import build
from repro.core import SRMConfig
from repro.machine import ClusterSpec
from repro.mpi.ops import SUM
from repro.obs.critical import critical_path
from repro.obs.taxonomy import (
    BLOCK_REGISTER,
    BLOCK_TRANSFER,
    FLOW_PUT_COUNTER,
    PIPELINE_CHUNK,
    RING_STEP,
    SCAN_CHUNK,
    WAIT_PHASES,
)


def launch(program, nodes=2, tasks=2, srm_config=None):
    machine, stack = build(
        "srm", ClusterSpec(nodes=nodes, tasks_per_node=tasks), srm_config=srm_config
    )
    result = machine.launch(lambda task: program(stack, task))
    return machine, result


def phase_names(machine):
    return {span.name for span in machine.obs.recorder.spans}


def run_scatter(block=1024, **kw):
    def program(stack, task):
        total = task.machine.spec.total_tasks
        send = np.arange(total * block, dtype=np.uint8) if task.rank == 0 else None
        yield from stack.scatter(task, send, np.zeros(block, np.uint8), root=0)

    return launch(program, **kw)


def run_gather(block=1024, **kw):
    def program(stack, task):
        total = task.machine.spec.total_tasks
        recv = np.zeros(total * block, np.uint8) if task.rank == 0 else None
        yield from stack.gather(task, np.full(block, task.rank, np.uint8), recv, root=0)

    return launch(program, **kw)


def run_allgather(block=1024, **kw):
    def program(stack, task):
        total = task.machine.spec.total_tasks
        recv = np.zeros(total * block, np.uint8)
        yield from stack.allgather(task, np.full(block, task.rank, np.uint8), recv)

    return launch(program, **kw)


def run_alltoall(block=512, **kw):
    def program(stack, task):
        total = task.machine.spec.total_tasks
        send = np.full(total * block, task.rank, np.uint8)
        yield from stack.alltoall(task, send, np.zeros(total * block, np.uint8))

    return launch(program, **kw)


def run_scan(nbytes=65536, **kw):
    count = nbytes // 8

    def program(stack, task):
        src = np.full(count, float(task.rank + 1))
        yield from stack.scan(task, src, np.zeros(count), SUM)

    return launch(program, **kw)


def run_ring_allreduce(nbytes=65536, nodes=4, **kw):
    count = nbytes // 8

    def program(stack, task):
        src = np.full(count, float(task.rank + 1))
        yield from stack.allreduce(task, src, np.zeros(count), SUM)

    return launch(
        program,
        nodes=nodes,
        srm_config=SRMConfig(allreduce_algorithm="ring"),
        **kw,
    )


# -- phase vocabulary -------------------------------------------------------


def test_scatter_records_register_and_transfer_phases():
    machine, _ = run_scatter()
    names = phase_names(machine)
    assert BLOCK_REGISTER in names
    assert BLOCK_TRANSFER in names


def test_gather_records_register_and_transfer_phases():
    machine, _ = run_gather()
    names = phase_names(machine)
    assert BLOCK_REGISTER in names
    assert BLOCK_TRANSFER in names


def test_small_allgather_composes_gather_and_broadcast_phases():
    machine, _ = run_allgather(block=64)  # well under allgather_ring_min
    names = phase_names(machine)
    assert BLOCK_REGISTER in names and BLOCK_TRANSFER in names
    assert RING_STEP not in names


def test_large_allgather_records_ring_steps():
    machine, _ = run_allgather(block=1024, nodes=4,
                               srm_config=SRMConfig(allgather_ring_min=1024))
    names = phase_names(machine)
    assert RING_STEP in names
    assert PIPELINE_CHUNK in names, "the local fan-out should record chunks"


def test_alltoall_records_register_and_transfer_phases():
    machine, _ = run_alltoall()
    names = phase_names(machine)
    assert BLOCK_REGISTER in names
    assert BLOCK_TRANSFER in names


def test_scan_records_chunk_phases():
    machine, _ = run_scan()
    spans = [s for s in machine.obs.recorder.spans if s.name == SCAN_CHUNK]
    assert spans
    # 64 KB through a smaller shared slot means several chunks per rank.
    per_rank = {}
    for span in spans:
        per_rank[span.rank] = per_rank.get(span.rank, 0) + 1
    assert set(per_rank) == set(range(machine.spec.total_tasks))


def test_ring_allreduce_records_ring_steps():
    machine, _ = run_ring_allreduce()
    spans = machine.obs.recorder.spans
    steps = [s for s in spans if s.name == RING_STEP]
    assert steps
    # Masters run 2(k-1) ring steps: k-1 reduce-scatter + k-1 allgather.
    masters = {s.rank for s in steps}
    per_master = {rank: sum(1 for s in steps if s.rank == rank) for rank in masters}
    assert all(count == 2 * (4 - 1) for count in per_master.values())
    assert BLOCK_REGISTER in {s.name for s in spans}


# -- span discipline --------------------------------------------------------


@pytest.mark.parametrize(
    "run",
    [run_scatter, run_gather, run_allgather, run_alltoall, run_scan,
     run_ring_allreduce],
    ids=["scatter", "gather", "allgather", "alltoall", "scan", "ring-allreduce"],
)
def test_spans_closed_and_nested(run):
    machine, result = run()
    spans = machine.obs.recorder.spans
    assert spans
    # Persistent helpers (the broadcast forwarder) may be parked on a wait
    # when the simulation ends; every protocol span must be closed.
    open_spans = [s for s in spans if not s.closed]
    assert all(s.name in WAIT_PHASES for s in open_spans)
    closed = [s for s in spans if s.closed]
    for child in (s for s in closed if s.depth > 0):
        parent = spans[child.parent]
        assert parent.rank == child.rank
        assert parent.start <= child.start
        assert not parent.closed or parent.end >= child.end
    assert all(
        result.start_time <= s.start <= s.end <= result.end_time for s in closed
    )


# -- flows and critical path ------------------------------------------------


@pytest.mark.parametrize(
    "run",
    [run_scatter, run_gather, run_allgather, run_alltoall, run_scan,
     run_ring_allreduce],
    ids=["scatter", "gather", "allgather", "alltoall", "scan", "ring-allreduce"],
)
def test_critical_path_attribution(run):
    machine, result = run()
    path = critical_path(
        machine.obs.recorder, start=result.start_time, end=result.end_time
    )
    assert path.total == pytest.approx(result.elapsed)
    assert path.attributed >= 0.95 * result.elapsed
    assert sum(path.by_phase().values()) == pytest.approx(path.total, rel=1e-9)


def test_block_collectives_record_cross_rank_flows():
    machine, _ = run_alltoall(nodes=2, tasks=2)
    flows = [f for f in machine.obs.recorder.flows if f.kind == FLOW_PUT_COUNTER]
    assert any(f.src_rank != f.dst_rank for f in flows)


def test_ring_allreduce_critical_path_crosses_ranks():
    machine, result = run_ring_allreduce()
    path = critical_path(
        machine.obs.recorder, start=result.start_time, end=result.end_time
    )
    assert len({segment.rank for segment in path.segments}) > 1
