"""Tests for SRM collectives over arbitrary task groups (the §5 extension)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SRM
from repro.errors import ConfigurationError
from repro.machine import ClusterSpec, Machine
from repro.mpi.ops import SUM
from repro.trees import group_embedding


def machine_4x4():
    return Machine(ClusterSpec(nodes=4, tasks_per_node=4))


# ---------------------------------------------------------------------------
# group embedding
# ---------------------------------------------------------------------------


def test_group_embedding_only_uses_member_nodes():
    spec = ClusterSpec(nodes=4, tasks_per_node=4)
    trees = group_embedding(spec, [0, 1, 12, 13], root=0)
    assert sorted(trees.intra) == [0, 3]  # nodes 1, 2 host no members
    assert set(trees.inter.ranks) == {0, 12}


def test_group_embedding_representatives():
    spec = ClusterSpec(nodes=4, tasks_per_node=4)
    trees = group_embedding(spec, [2, 3, 5, 6, 7], root=6)
    # Root's node (1) is represented by the root; node 0 by its lowest member.
    assert trees.representatives[1] == 6
    assert trees.representatives[0] == 2


def test_group_embedding_spans_exactly_the_group():
    spec = ClusterSpec(nodes=4, tasks_per_node=4)
    members = [1, 3, 4, 9, 10, 15]
    combined = group_embedding(spec, members, root=9).combined()
    assert sorted(combined.ranks) == members
    assert combined.cross_node_edges(spec) == 3  # 4 used nodes - 1


def test_group_embedding_validation():
    spec = ClusterSpec(nodes=2, tasks_per_node=2)
    with pytest.raises(ConfigurationError):
        group_embedding(spec, [], root=0)
    with pytest.raises(ConfigurationError):
        group_embedding(spec, [0, 1], root=3)  # root not a member


# ---------------------------------------------------------------------------
# group collectives
# ---------------------------------------------------------------------------


GROUPS = [
    [0, 1, 2, 3],           # one full node
    [0, 4, 8, 12],          # the masters (one member per node)
    [1, 2, 5, 6, 9, 10],    # partial nodes
    [3, 7, 11, 15],         # non-master singletons per node
    [5],                    # singleton group
    list(range(16)),        # the whole world, via the group path
]


@pytest.mark.parametrize("members", GROUPS)
def test_group_broadcast(members):
    machine = machine_4x4()
    srm = SRM(machine, group=members)
    root = members[len(members) // 2]
    payload = np.arange(3000, dtype=np.uint8)
    buffers = {r: (payload.copy() if r == root else np.zeros_like(payload)) for r in members}

    def program(task):
        yield from srm.broadcast(task, buffers[task.rank], root=root)

    machine.launch(program, ranks=members)
    for rank in members:
        assert np.array_equal(buffers[rank], payload), f"rank {rank}"


@pytest.mark.parametrize("members", GROUPS)
def test_group_reduce(members):
    machine = machine_4x4()
    srm = SRM(machine, group=members)
    root = members[0]
    sources = {r: np.full(64, float(r + 1)) for r in members}
    destination = np.zeros(64)

    def program(task):
        dst = destination if task.rank == root else None
        yield from srm.reduce(task, sources[task.rank], dst, SUM, root=root)

    machine.launch(program, ranks=members)
    assert np.all(destination == sum(r + 1 for r in members))


@pytest.mark.parametrize("members", GROUPS)
def test_group_allreduce(members):
    machine = machine_4x4()
    srm = SRM(machine, group=members)
    sources = {r: np.full(64, float(r + 1)) for r in members}
    outs = {r: np.zeros(64) for r in members}

    def program(task):
        yield from srm.allreduce(task, sources[task.rank], outs[task.rank], SUM)

    machine.launch(program, ranks=members)
    expected = sum(r + 1 for r in members)
    for rank in members:
        assert np.all(outs[rank] == expected), f"rank {rank}"


@pytest.mark.parametrize("members", GROUPS)
def test_group_barrier(members):
    machine = machine_4x4()
    srm = SRM(machine, group=members)
    arrivals, releases = {}, {}

    def program(task):
        yield from task.compute(1e-6 * (task.rank + 1))
        arrivals[task.rank] = task.engine.now
        yield from srm.barrier(task)
        releases[task.rank] = task.engine.now

    machine.launch(program, ranks=members)
    assert min(releases.values()) >= max(arrivals.values())


def test_group_large_broadcast():
    machine = machine_4x4()
    members = [1, 2, 6, 7, 13]
    srm = SRM(machine, group=members)
    payload = np.random.default_rng(0).integers(0, 255, 150_000).astype(np.uint8)
    buffers = {r: (payload.copy() if r == 1 else np.zeros_like(payload)) for r in members}

    def program(task):
        yield from srm.broadcast(task, buffers[task.rank], root=1)

    machine.launch(program, ranks=members)
    for rank in members:
        assert np.array_equal(buffers[rank], payload)


def test_nonmember_rejected():
    machine = machine_4x4()
    srm = SRM(machine, group=[0, 1])

    def program(task):
        yield from srm.barrier(task)

    with pytest.raises(ConfigurationError):
        machine.launch(program, ranks=[5])
    with pytest.raises(ConfigurationError):
        srm.ctx.bcast_plan(5)  # non-member root


def test_group_and_world_results_agree():
    machine = machine_4x4()
    world = SRM(machine)
    group = SRM(machine, group=list(range(16)))
    sources = {r: np.full(32, float(r)) for r in range(16)}
    outs_world = {r: np.zeros(32) for r in range(16)}
    outs_group = {r: np.zeros(32) for r in range(16)}

    def program(task):
        yield from world.allreduce(task, sources[task.rank], outs_world[task.rank], SUM)
        yield from group.allreduce(task, sources[task.rank], outs_group[task.rank], SUM)

    machine.launch(program)
    for rank in range(16):
        assert np.array_equal(outs_world[rank], outs_group[rank])


def test_disjoint_groups_run_concurrently():
    """Two halves of the machine run independent collectives in one launch —
    possible because each SRM instance owns its own buffers and counters."""
    machine = machine_4x4()
    left = [0, 1, 4, 5]
    right = [10, 11, 14, 15]
    srm_left = SRM(machine, group=left)
    srm_right = SRM(machine, group=right)
    payload_left = np.full(2000, 7, np.uint8)
    payload_right = np.full(2000, 9, np.uint8)
    buffers = {r: np.zeros(2000, np.uint8) for r in left + right}
    buffers[0][:] = 7
    buffers[10][:] = 9

    def program(task):
        if task.rank in left:
            yield from srm_left.broadcast(task, buffers[task.rank], root=0)
        else:
            yield from srm_right.broadcast(task, buffers[task.rank], root=10)

    machine.launch(program, ranks=left + right)
    for rank in left:
        assert np.array_equal(buffers[rank], payload_left)
    for rank in right:
        assert np.array_equal(buffers[rank], payload_right)


def test_group_repeated_mixed_operations():
    machine = machine_4x4()
    members = [2, 3, 6, 7, 8, 9]
    srm = SRM(machine, group=members)
    rng = np.random.default_rng(1)
    for _ in range(4):
        root = int(rng.choice(members))
        payload = rng.integers(0, 255, int(rng.integers(1, 30_000))).astype(np.uint8)
        buffers = {r: (payload.copy() if r == root else np.zeros_like(payload)) for r in members}

        def program(task):
            yield from srm.broadcast(task, buffers[task.rank], root=root)
            yield from srm.barrier(task)

        machine.launch(program, ranks=members)
        assert all(np.array_equal(buffers[r], payload) for r in members)


@given(
    seed=st.integers(0, 10_000),
    group_size=st.integers(1, 12),
)
@settings(max_examples=20, deadline=None)
def test_group_allreduce_property(seed, group_size):
    machine = machine_4x4()
    rng = np.random.default_rng(seed)
    members = sorted(rng.choice(16, size=group_size, replace=False).tolist())
    srm = SRM(machine, group=members)
    sources = {r: rng.integers(-100, 100, 50).astype(np.int64) for r in members}
    outs = {r: np.zeros(50, np.int64) for r in members}

    def program(task):
        yield from srm.allreduce(task, sources[task.rank], outs[task.rank], SUM)

    machine.launch(program, ranks=members)
    expected = np.sum(np.stack([sources[r] for r in members]), axis=0)
    for rank in members:
        assert np.array_equal(outs[rank], expected)
