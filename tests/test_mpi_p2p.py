"""Unit tests for the MPI point-to-point engine (eager/rendezvous/matching)."""

import numpy as np
import pytest

from repro.errors import ProtocolError, TruncationError
from repro.machine import ClusterSpec, CostModel, EagerLimitTable, Machine
from repro.mpi import ANY_SOURCE, ANY_TAG
from repro.mpi.p2p import EagerPool


@pytest.fixture
def machine():
    return Machine(ClusterSpec(nodes=2, tasks_per_node=4))


def run_pair(machine, sender_rank, receiver_rank, sender, receiver):
    """Launch a two-party program and return the LaunchResult."""

    def program(t):
        if t.rank == sender_rank:
            result = yield from sender(t)
        else:
            result = yield from receiver(t)
        return result

    return machine.launch(program, ranks=[sender_rank, receiver_rank])


# ---------------------------------------------------------------------------
# basic delivery, both protocols, both domains
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("receiver_rank", [1, 4], ids=["intra-node", "inter-node"])
@pytest.mark.parametrize("nbytes", [0, 64, 1024, 200_000], ids=["zero", "tiny", "eager", "rendezvous"])
def test_send_recv_delivers_bytes(machine, receiver_rank, nbytes):
    src = np.arange(nbytes, dtype=np.uint8)
    dst = np.zeros_like(src)

    def sender(t):
        yield from t.mpi.send(receiver_rank, src, tag=3)

    def receiver(t):
        status = yield from t.mpi.recv(0, tag=3, buffer=dst)
        return status

    result = run_pair(machine, 0, receiver_rank, sender, receiver)
    status = result.results[receiver_rank]
    assert np.array_equal(dst, src)
    assert status.source == 0
    assert status.tag == 3
    assert status.nbytes == nbytes


def test_protocol_selection_by_size(machine):
    limit = machine.task(0).mpi.eager_limit
    small = np.zeros(limit, np.uint8)
    large = np.zeros(limit + 1, np.uint8)
    dst_small = np.zeros_like(small)
    dst_large = np.zeros_like(large)

    def sender(t):
        yield from t.mpi.send(4, small, tag=1)
        yield from t.mpi.send(4, large, tag=2)

    def receiver(t):
        yield from t.mpi.recv(0, 1, dst_small)
        yield from t.mpi.recv(0, 2, dst_large)

    run_pair(machine, 0, 4, sender, receiver)
    stats = machine.task(0).mpi.stats
    assert stats.eager_messages == 1
    assert stats.rendezvous_messages == 1


def test_eager_limit_depends_on_task_count():
    small_job = Machine(ClusterSpec(nodes=1, tasks_per_node=16))
    large_job = Machine(ClusterSpec(nodes=16, tasks_per_node=16))
    assert small_job.task(0).mpi.eager_limit > large_job.task(0).mpi.eager_limit


# ---------------------------------------------------------------------------
# protocol timing properties
# ---------------------------------------------------------------------------


def test_rendezvous_pays_handshake_round_trip(machine):
    # Same payload forced through each protocol via the eager limit.
    nbytes = 4 * 1024
    cost_eager = CostModel.ibm_sp_colony().evolve(
        eager_limits=EagerLimitTable.fixed(nbytes)
    )
    cost_rndv = cost_eager.evolve(eager_limits=EagerLimitTable.fixed(0))
    src = np.ones(nbytes, np.uint8)

    def run_with(cost):
        machine = Machine(ClusterSpec(nodes=2, tasks_per_node=1), cost=cost)
        dst = np.zeros_like(src)

        def sender(t):
            yield from t.mpi.send(1, src, tag=0)

        def receiver(t):
            yield from t.mpi.recv(0, 0, dst)

        return run_pair(machine, 0, 1, sender, receiver).elapsed

    # Rendezvous adds at least one extra network round trip over eager.
    assert run_with(cost_rndv) > run_with(cost_eager) + cost_rndv.net_latency


def test_eager_sender_returns_before_delivery(machine):
    nbytes = 1024
    src = np.ones(nbytes, np.uint8)
    dst = np.zeros_like(src)
    sender_done = {}

    def sender(t):
        yield from t.mpi.send(4, src, tag=0)
        sender_done["time"] = t.engine.now

    def receiver(t):
        yield from t.compute(5e-3)  # late receiver
        yield from t.mpi.recv(0, 0, dst)

    run_pair(machine, 0, 4, sender, receiver)
    # Eager send completed long before the receiver showed up.
    assert sender_done["time"] < 1e-3
    assert np.array_equal(dst, src)


def test_rendezvous_sender_blocks_for_late_receiver(machine):
    nbytes = 500_000  # above every eager limit
    src = np.ones(nbytes, np.uint8)
    dst = np.zeros_like(src)
    sender_done = {}
    receiver_delay = 5e-3

    def sender(t):
        yield from t.mpi.send(4, src, tag=0)
        sender_done["time"] = t.engine.now

    def receiver(t):
        yield from t.compute(receiver_delay)
        yield from t.mpi.recv(0, 0, dst)

    run_pair(machine, 0, 4, sender, receiver)
    assert sender_done["time"] > receiver_delay  # held by the CTS
    assert np.array_equal(dst, src)


def test_unexpected_message_costs_more_than_expected(machine):
    nbytes = 256
    src = np.ones(nbytes, np.uint8)

    def elapsed_with_recv_delay(delay):
        machine = Machine(ClusterSpec(nodes=2, tasks_per_node=1))
        dst = np.zeros(nbytes, np.uint8)
        recv_span = {}

        def sender(t):
            yield from t.mpi.send(1, src, tag=0)

        def receiver(t):
            yield from t.compute(delay)
            start = t.engine.now
            yield from t.mpi.recv(0, 0, dst)
            recv_span["span"] = t.engine.now - start

        run_pair(machine, 0, 1, sender, receiver)
        return recv_span["span"], machine.task(1).mpi.stats.unexpected_arrivals

    late_span, late_unexpected = elapsed_with_recv_delay(5e-3)  # msg already there
    assert late_unexpected == 1
    # The drain is local, so the late receive is quick, but it still pays the
    # unexpected-queue overhead plus the copy-out.
    cost = machine.cost
    assert late_span >= cost.mpi_recv_overhead + cost.mpi_unexpected_overhead


# ---------------------------------------------------------------------------
# matching semantics
# ---------------------------------------------------------------------------


def test_tag_selectivity(machine):
    a = np.full(16, 1, np.uint8)
    b = np.full(16, 2, np.uint8)
    out_first = np.zeros(16, np.uint8)
    out_second = np.zeros(16, np.uint8)

    def sender(t):
        yield from t.mpi.send(4, a, tag=10)
        yield from t.mpi.send(4, b, tag=20)

    def receiver(t):
        # Receive tag 20 first even though tag 10 arrived first.
        yield from t.mpi.recv(0, 20, out_first)
        yield from t.mpi.recv(0, 10, out_second)

    run_pair(machine, 0, 4, sender, receiver)
    assert np.all(out_first == 2)
    assert np.all(out_second == 1)


def test_any_source_any_tag(machine):
    payload = np.full(8, 7, np.uint8)
    out = np.zeros(8, np.uint8)

    def sender(t):
        yield from t.mpi.send(4, payload, tag=42)

    def receiver(t):
        status = yield from t.mpi.recv(ANY_SOURCE, ANY_TAG, out)
        return status

    result = run_pair(machine, 0, 4, sender, receiver)
    assert result.results[4].source == 0
    assert result.results[4].tag == 42


def test_pairwise_ordering_same_tag(machine):
    first = np.full(8, 1, np.uint8)
    second = np.full(8, 2, np.uint8)
    out1 = np.zeros(8, np.uint8)
    out2 = np.zeros(8, np.uint8)

    def sender(t):
        yield from t.mpi.send(4, first, tag=0)
        yield from t.mpi.send(4, second, tag=0)

    def receiver(t):
        yield from t.mpi.recv(0, 0, out1)
        yield from t.mpi.recv(0, 0, out2)

    run_pair(machine, 0, 4, sender, receiver)
    assert np.all(out1 == 1)
    assert np.all(out2 == 2)


def test_truncation_eager(machine):
    src = np.ones(128, np.uint8)
    dst = np.zeros(64, np.uint8)

    def sender(t):
        yield from t.mpi.send(4, src, tag=0)

    def receiver(t):
        yield from t.mpi.recv(0, 0, dst)

    with pytest.raises(TruncationError):
        run_pair(machine, 0, 4, sender, receiver)


def test_truncation_rendezvous(machine):
    src = np.ones(500_000, np.uint8)
    dst = np.zeros(100, np.uint8)

    def sender(t):
        yield from t.mpi.send(4, src, tag=0)

    def receiver(t):
        yield from t.mpi.recv(0, 0, dst)

    with pytest.raises(TruncationError):
        run_pair(machine, 0, 4, sender, receiver)


def test_recv_requires_buffer(machine):
    def program(t):
        yield from t.mpi.recv(0, 0, None)

    with pytest.raises(ProtocolError):
        machine.launch(program, ranks=[1])


def test_send_to_invalid_rank_rejected(machine):
    def program(t):
        yield from t.mpi.send(99, np.zeros(8, np.uint8))

    with pytest.raises(Exception):
        machine.launch(program, ranks=[0])


# ---------------------------------------------------------------------------
# nonblocking + sendrecv
# ---------------------------------------------------------------------------


def test_isend_irecv_join(machine):
    src = np.full(32, 5, np.uint8)
    dst = np.zeros(32, np.uint8)

    def program(t):
        if t.rank == 0:
            request = t.mpi.isend(4, src, tag=9)
            yield request
        else:
            request = t.mpi.irecv(0, 9, dst)
            status = yield request
            return status

    result = machine.launch(program, ranks=[0, 4])
    assert result.results[4].nbytes == 32
    assert np.all(dst == 5)


def test_sendrecv_exchange_no_deadlock(machine):
    # Classic pairwise exchange: both ranks send and receive simultaneously.
    def program(t):
        peer = 4 if t.rank == 0 else 0
        mine = np.full(1024, t.rank + 1, np.uint8)
        theirs = np.zeros(1024, np.uint8)
        yield from t.mpi.sendrecv(peer, mine, peer, theirs, send_tag=7)
        return int(theirs[0])

    result = machine.launch(program, ranks=[0, 4])
    assert result.results[0] == 5
    assert result.results[4] == 1


# ---------------------------------------------------------------------------
# eager pool flow control
# ---------------------------------------------------------------------------


def test_eager_pool_acquire_release():
    machine = Machine(ClusterSpec(nodes=1, tasks_per_node=1))
    pool = EagerPool(machine.engine, capacity=100)
    first = pool.acquire(60)
    second = pool.acquire(60)  # must wait
    assert first.triggered
    assert not second.triggered
    pool.release(60)
    assert second.triggered
    assert pool.free == 40


def test_eager_pool_fifo_no_overtaking():
    machine = Machine(ClusterSpec(nodes=1, tasks_per_node=1))
    pool = EagerPool(machine.engine, capacity=100)
    pool.acquire(100)
    big = pool.acquire(90)
    small = pool.acquire(5)  # could fit sooner, but FIFO holds it back
    pool.release(50)
    # 5 B would fit in the 50 free bytes, but FIFO holds it behind the 90.
    assert not big.triggered
    assert not small.triggered
    pool.release(50)
    assert big.triggered
    assert small.triggered  # fits in the 10 B left after the 90 is granted
    assert pool.free == 5


def test_eager_pool_rejects_oversized_and_over_release():
    machine = Machine(ClusterSpec(nodes=1, tasks_per_node=1))
    pool = EagerPool(machine.engine, capacity=100)
    with pytest.raises(ProtocolError):
        pool.acquire(101)
    with pytest.raises(ProtocolError):
        pool.release(1)


def test_eager_pool_backpressure_blocks_sender():
    # A tiny pool forces the second eager send to wait for the first drain.
    cost = CostModel.ibm_sp_colony().evolve(eager_pool_bytes=1024)
    machine = Machine(ClusterSpec(nodes=2, tasks_per_node=1), cost=cost)
    src = np.ones(machine.task(0).mpi.eager_limit, np.uint8)
    dst = np.zeros_like(src)
    send_times = []

    def sender(t):
        for _ in range(3):
            yield from t.mpi.send(1, src, tag=0)
            send_times.append(t.engine.now)

    def receiver(t):
        yield from t.compute(1e-2)
        for _ in range(3):
            yield from t.mpi.recv(0, 0, dst)

    def program(t):
        if t.rank == 0:
            yield from sender(t)
        else:
            yield from receiver(t)

    machine.launch(program)
    # Later sends stall until the receiver drains pool space (>= 10 ms).
    assert send_times[0] < 1e-2
    assert send_times[-1] >= 1e-2
