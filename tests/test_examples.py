"""Smoke tests for the example scripts' building blocks.

The full examples are integration demos (some run for tens of simulated
milliseconds); here we execute the fastest one end-to-end and import-check
the rest so a broken API surface fails the suite immediately.
"""

import importlib.util
import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def test_examples_directory_complete():
    names = {path.name for path in EXAMPLES.glob("*.py")}
    assert {
        "quickstart.py",
        "iterative_jacobi.py",
        "parameter_server.py",
        "tuning_sweep.py",
        "subgroup_teams.py",
    } <= names


@pytest.mark.parametrize(
    "name",
    ["quickstart", "iterative_jacobi", "parameter_server", "tuning_sweep", "subgroup_teams"],
)
def test_example_parses_and_imports(name):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)  # defines functions; __main__ guard skips runs
    entry_points = ("main", "manual_broadcast", "node_size_sweep")
    assert any(hasattr(module, name) for name in entry_points)


def test_quickstart_runs_end_to_end():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert "simulated" in result.stdout
    assert "SRM" in result.stdout
