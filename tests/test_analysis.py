"""Tests for the Fig. 2 copy accounting and the analytical model."""

import pytest

from repro.analysis import (
    audit_reduce,
    crossover_node_size,
    message_passing_reduce_analytic,
    smp_barrier_time,
    smp_broadcast_time,
    smp_reduce_analytic,
    smp_reduce_time,
    srm_allreduce_time,
    srm_barrier_time,
    srm_broadcast_time,
    srm_reduce_time,
)
from repro.bench import build, time_operation
from repro.machine import ClusterSpec, CostModel

COST = CostModel.ibm_sp_colony()


# ---------------------------------------------------------------------------
# data movement (Fig. 2)
# ---------------------------------------------------------------------------


def test_paper_figure2_case():
    # "For eight processes, there are four memory copies."
    counts = smp_reduce_analytic(8)
    assert counts.copies == 4
    assert counts.operator_executions == 7
    # "...seven data movement operations ... 7 or even 14 memory copies."
    mp = message_passing_reduce_analytic(8)
    assert mp.messages == 7
    assert mp.copies == 14
    assert message_passing_reduce_analytic(8, copies_per_message=1).copies == 7


def test_analytic_copies_are_leaf_count():
    for tasks in (2, 3, 4, 5, 8, 16, 17):
        counts = smp_reduce_analytic(tasks)
        assert counts.copies <= tasks - 1 or tasks == 1
        assert counts.operator_executions == max(0, tasks - 1)


def test_single_task_moves_nothing():
    assert smp_reduce_analytic(1).copies == 0
    assert message_passing_reduce_analytic(1).messages == 0


def test_audit_matches_analytic_for_srm():
    for tasks in (2, 4, 8, 16):
        assert audit_reduce(tasks, "srm").copies == smp_reduce_analytic(tasks).copies


def test_audit_mpi_moves_much_more():
    srm = audit_reduce(8, "srm")
    mpi = audit_reduce(8, "mpi")
    assert mpi.copies >= 2 * srm.copies
    assert mpi.messages == 7


def test_audit_rejects_unknown_stack():
    with pytest.raises(ValueError):
        audit_reduce(4, "openmpi")


# ---------------------------------------------------------------------------
# analytical model
# ---------------------------------------------------------------------------


def test_smp_stage_models_scale_sanely():
    assert smp_broadcast_time(COST, 1, 1024) == 0.0
    assert smp_broadcast_time(COST, 16, 1024) > smp_broadcast_time(COST, 4, 1024)
    assert smp_reduce_time(COST, 16, 1024) > smp_reduce_time(COST, 4, 1024)
    assert smp_barrier_time(COST, 1) == 0.0
    assert smp_barrier_time(COST, 16) > smp_barrier_time(COST, 2)


def test_model_grows_with_size_and_nodes():
    spec_small = ClusterSpec(nodes=4, tasks_per_node=16)
    spec_large = ClusterSpec(nodes=16, tasks_per_node=16)
    for fn in (srm_broadcast_time, srm_reduce_time, srm_allreduce_time):
        assert fn(COST, spec_small, 1 << 20) > fn(COST, spec_small, 1024)
        assert fn(COST, spec_large, 1024) > fn(COST, spec_small, 1024)
    assert srm_barrier_time(COST, spec_large) > srm_barrier_time(COST, spec_small)


@pytest.mark.parametrize("operation,model_fn", [
    ("broadcast", srm_broadcast_time),
    ("reduce", srm_reduce_time),
    ("allreduce", srm_allreduce_time),
])
@pytest.mark.parametrize("nbytes", [64, 65536])
def test_model_within_band_of_simulation(operation, model_fn, nbytes):
    spec = ClusterSpec(nodes=4, tasks_per_node=16)
    machine, srm = build("srm", spec)
    simulated = time_operation(machine, srm, operation, nbytes, repeats=2, warmup=1).seconds
    predicted = model_fn(COST, spec, nbytes)
    assert 0.4 <= predicted / simulated <= 2.0


def test_barrier_model_close_to_simulation():
    spec = ClusterSpec(nodes=16, tasks_per_node=16)
    machine, srm = build("srm", spec)
    simulated = time_operation(machine, srm, "barrier", repeats=3, warmup=1).seconds
    assert 0.5 <= srm_barrier_time(COST, spec) / simulated <= 1.5


def test_crossover_node_size_reasonable():
    # 16-way Colony-era nodes are well inside the shared-memory-wins regime.
    assert crossover_node_size(COST, 1024) > 16
    # Bigger messages push the crossover down (bus saturates sooner).
    assert crossover_node_size(COST, 1 << 20) <= crossover_node_size(COST, 1024)


# ---------------------------------------------------------------------------
# baseline model + analytic ratios
# ---------------------------------------------------------------------------


def test_mpi_p2p_model_eager_vs_rendezvous():
    from repro.analysis import mpi_p2p_time

    limit = COST.eager_limit(256)
    eager = mpi_p2p_time(COST, limit, 256, intra_node=False)
    rendezvous = mpi_p2p_time(COST, limit + 1, 256, intra_node=False)
    # Crossing the limit costs a handshake, far more than one extra byte.
    assert rendezvous > eager + 20e-6


def test_mpi_p2p_model_intra_cheaper_than_inter():
    from repro.analysis import mpi_p2p_time

    assert mpi_p2p_time(COST, 1024, 64, True) < mpi_p2p_time(COST, 1024, 64, False)


def test_mpi_broadcast_model_tracks_simulation():
    from repro.analysis import mpi_broadcast_time
    from repro.bench import time_operation

    spec = ClusterSpec(nodes=4, tasks_per_node=16)
    machine, ibm = build("ibm", spec)
    for nbytes in (64, 16384):
        simulated = time_operation(machine, ibm, "broadcast", nbytes, repeats=2).seconds
        predicted = mpi_broadcast_time(COST, spec, nbytes)
        assert 0.4 <= predicted / simulated <= 2.0, (nbytes, predicted, simulated)


def test_mpi_barrier_model_tracks_simulation():
    from repro.analysis import mpi_barrier_time
    from repro.bench import time_operation

    spec = ClusterSpec(nodes=16, tasks_per_node=16)
    machine, ibm = build("ibm", spec)
    simulated = time_operation(machine, ibm, "barrier", repeats=3).seconds
    assert 0.5 <= mpi_barrier_time(COST, spec) / simulated <= 2.0


def test_predicted_ratio_always_srm_wins():
    from repro.analysis import predicted_broadcast_ratio

    for nodes in (2, 4, 8, 16):
        spec = ClusterSpec(nodes=nodes, tasks_per_node=16)
        for nbytes in (8, 1024, 65536, 1 << 20):
            ratio = predicted_broadcast_ratio(COST, spec, nbytes)
            assert 0 < ratio < 100, (nodes, nbytes, ratio)
