"""Differential tests: all three stacks must compute identical results for
identical inputs across the full operation surface.

This is the strongest correctness statement the repository makes: the SRM
protocols — with their shared buffers, counters, pipelines, rings and
chains — are *observationally equivalent* to the straightforward
message-passing implementations for every operation, on randomized shapes,
sizes, roots, dtypes, and operators.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import build
from repro.machine import ClusterSpec
from repro.mpi.ops import MAX, MIN, PROD, SUM

OPS = {"sum": SUM, "min": MIN, "max": MAX, "prod": PROD}


def _run_all_stacks(shape, runner):
    """Run `runner(machine, stack)` under each stack; return outputs."""
    outputs = {}
    for name in ("srm", "ibm", "mpich"):
        machine, stack = build(name, ClusterSpec(nodes=shape[0], tasks_per_node=shape[1]))
        outputs[name] = runner(machine, stack)
    return outputs


def _assert_all_equal(outputs):
    reference = outputs["srm"]
    for name in ("ibm", "mpich"):
        candidate = outputs[name]
        assert len(candidate) == len(reference)
        for key in reference:
            assert np.allclose(candidate[key], reference[key]), (name, key)


@given(
    nodes=st.integers(1, 3),
    tasks=st.integers(1, 4),
    count=st.integers(1, 4000),
    op_name=st.sampled_from(sorted(OPS)),
    seed=st.integers(0, 10_000),
)
@settings(max_examples=12, deadline=None)
def test_allreduce_equivalence(nodes, tasks, count, op_name, seed):
    op = OPS[op_name]
    rng = np.random.default_rng(seed)
    total = nodes * tasks
    sources = {r: rng.random(count) + 0.5 for r in range(total)}

    def runner(machine, stack):
        outs = {r: np.zeros(count) for r in range(total)}

        def program(task):
            yield from stack.allreduce(task, sources[task.rank], outs[task.rank], op)

        machine.launch(program)
        return outs

    _assert_all_equal(_run_all_stacks((nodes, tasks), runner))


@given(
    nodes=st.integers(1, 3),
    tasks=st.integers(1, 4),
    count=st.integers(1, 3000),
    root_seed=st.integers(0, 1000),
    seed=st.integers(0, 10_000),
)
@settings(max_examples=12, deadline=None)
def test_reduce_equivalence(nodes, tasks, count, root_seed, seed):
    total = nodes * tasks
    root = root_seed % total
    rng = np.random.default_rng(seed)
    sources = {r: rng.random(count) for r in range(total)}

    def runner(machine, stack):
        destination = np.zeros(count)

        def program(task):
            dst = destination if task.rank == root else None
            yield from stack.reduce(task, sources[task.rank], dst, SUM, root=root)

        machine.launch(program)
        return {"dst": destination}

    _assert_all_equal(_run_all_stacks((nodes, tasks), runner))


@given(
    nodes=st.integers(1, 3),
    tasks=st.integers(1, 3),
    block=st.integers(1, 1500),
    seed=st.integers(0, 10_000),
)
@settings(max_examples=10, deadline=None)
def test_allgather_equivalence(nodes, tasks, block, seed):
    total = nodes * tasks
    rng = np.random.default_rng(seed)
    blocks = {r: rng.integers(0, 255, block).astype(np.uint8) for r in range(total)}

    def runner(machine, stack):
        outs = {r: np.zeros(block * total, np.uint8) for r in range(total)}

        def program(task):
            yield from stack.allgather(task, blocks[task.rank], outs[task.rank])

        machine.launch(program)
        return outs

    _assert_all_equal(_run_all_stacks((nodes, tasks), runner))


@given(
    nodes=st.integers(1, 3),
    tasks=st.integers(1, 3),
    count=st.integers(1, 2000),
    seed=st.integers(0, 10_000),
)
@settings(max_examples=10, deadline=None)
def test_scan_equivalence(nodes, tasks, count, seed):
    total = nodes * tasks
    rng = np.random.default_rng(seed)
    sources = {r: rng.random(count) for r in range(total)}

    def runner(machine, stack):
        outs = {r: np.zeros(count) for r in range(total)}

        def program(task):
            yield from stack.scan(task, sources[task.rank], outs[task.rank], SUM)

        machine.launch(program)
        return outs

    _assert_all_equal(_run_all_stacks((nodes, tasks), runner))


@given(
    nodes=st.integers(1, 3),
    tasks=st.integers(1, 3),
    block=st.integers(1, 800),
    seed=st.integers(0, 10_000),
)
@settings(max_examples=10, deadline=None)
def test_alltoall_equivalence(nodes, tasks, block, seed):
    total = nodes * tasks
    rng = np.random.default_rng(seed)
    sends = {
        r: rng.integers(0, 255, block * total).astype(np.uint8) for r in range(total)
    }

    def runner(machine, stack):
        outs = {r: np.zeros(block * total, np.uint8) for r in range(total)}

        def program(task):
            yield from stack.alltoall(task, sends[task.rank], outs[task.rank])

        machine.launch(program)
        return outs

    _assert_all_equal(_run_all_stacks((nodes, tasks), runner))


def test_mixed_sequence_equivalence():
    """A long mixed program produces identical state under every stack."""
    total = 8

    def runner(machine, stack):
        rng = np.random.default_rng(99)
        state = {r: rng.random(256) for r in range(total)}
        outs = {r: np.zeros(256) for r in range(total)}
        gathered = {r: np.zeros(256 * total) for r in range(total)}

        def program(task):
            for step in range(3):
                yield from stack.broadcast(task, state[step % total], root=step % total)
                yield from stack.allreduce(task, state[task.rank], outs[task.rank], SUM)
                yield from stack.allgather(task, outs[task.rank], gathered[task.rank])
                yield from stack.barrier(task)

        machine.launch(program)
        return {**{f"o{r}": outs[r] for r in range(total)}, **{f"g{r}": gathered[r] for r in range(total)}}

    _assert_all_equal(_run_all_stacks((2, 4), runner))
