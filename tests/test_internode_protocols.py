"""Behavioural tests for the inter-node SRM protocols: flow control,
pipelining, counter discipline — the mechanisms of Figs. 4 and 5."""

import numpy as np
import pytest

from repro.bench import build
from repro.core import SRMConfig
from repro.machine import ClusterSpec

KB = 1024


def run_broadcast(machine, srm, nbytes, root=0, repeats=1):
    total = machine.spec.total_tasks
    payload = np.arange(nbytes, dtype=np.uint8)
    buffers = {r: (payload.copy() if r == root else np.zeros_like(payload)) for r in range(total)}

    def program(task):
        for _ in range(repeats):
            yield from srm.broadcast(task, buffers[task.rank], root=root)

    machine.launch(program)
    return buffers, payload


# ---------------------------------------------------------------------------
# small protocol flow control (Fig. 4 left)
# ---------------------------------------------------------------------------


def test_small_bcast_sends_free_acks():
    machine, srm = build("srm", ClusterSpec(nodes=2, tasks_per_node=2))
    run_broadcast(machine, srm, 1 * KB)
    machine.engine.run()  # drain the off-critical-path ack helpers
    plan = srm.ctx.bcast_plan(0)
    edge = plan.edges[1]
    # The used slot's free counter was consumed by... nobody yet: it must be
    # back at 1 (ready for the next use of that slot); the other stayed 1.
    assert sorted([edge.free[0].value, edge.free[1].value]) == [1, 1]
    # Arrival counters fully consumed.
    assert edge.arrival[0].value == 0 and edge.arrival[1].value == 0


def test_small_bcast_chunks_alternate_slots():
    machine, srm = build("srm", ClusterSpec(nodes=2, tasks_per_node=2))
    run_broadcast(machine, srm, 16 * KB)  # 4 chunks of 4 KB
    machine.engine.run()
    state = srm.ctx.nodes[0]
    assert state.bcast_seq == [4, 4]
    plan = srm.ctx.bcast_plan(0)
    edge = plan.edges[1]
    # Two uses per slot, all acked back to initial credit.
    assert edge.free[0].value == 1 and edge.free[1].value == 1


def test_back_to_back_calls_reuse_credits():
    machine, srm = build("srm", ClusterSpec(nodes=2, tasks_per_node=2))
    for _ in range(5):
        buffers, payload = run_broadcast(machine, srm, 2 * KB)
        for buffer in buffers.values():
            assert np.array_equal(buffer, payload)
    machine.engine.run()
    edge = srm.ctx.bcast_plan(0).edges[1]
    assert edge.free[0].value == 1 and edge.free[1].value == 1


def test_pipelining_beats_unpipelined_config():
    """Chunked two-buffer pipelining (8-64 KB band) must beat a config that
    sends the same message as one unpipelined block."""

    def timed(config):
        machine, srm = build("srm", ClusterSpec(nodes=8, tasks_per_node=8), srm_config=config)
        run_broadcast(machine, srm, 32 * KB)  # warm
        start = machine.now
        run_broadcast(machine, srm, 32 * KB)
        return machine.now - start

    pipelined = timed(SRMConfig())  # 4 KB chunks
    unpipelined = timed(SRMConfig(pipeline_min=32 * KB))  # single chunk
    assert pipelined < unpipelined


def test_put_window_limits_inflight_chunks():
    """A window of 1 serializes the large-protocol stream; wider windows
    overlap chunk transfers and must be faster."""

    def timed(window):
        config = SRMConfig(put_window=window)
        machine, srm = build("srm", ClusterSpec(nodes=2, tasks_per_node=1), srm_config=config)
        run_broadcast(machine, srm, 1 << 20)
        start = machine.now
        run_broadcast(machine, srm, 1 << 20)
        return machine.now - start

    assert timed(4) < timed(1)


# ---------------------------------------------------------------------------
# large protocol (Fig. 4 right)
# ---------------------------------------------------------------------------


def test_large_bcast_no_shared_buffer_traffic_on_single_task_nodes():
    # With one task per node the large protocol must not touch shm buffers:
    # puts go user-buffer to user-buffer.
    machine, srm = build("srm", ClusterSpec(nodes=4, tasks_per_node=1))
    run_broadcast(machine, srm, 256 * KB)
    for state in srm.ctx.nodes.values():
        assert state.bcast_seq == [0]


def test_large_bcast_stream_counters_monotonic_across_calls():
    machine, srm = build("srm", ClusterSpec(nodes=2, tasks_per_node=2))
    run_broadcast(machine, srm, 128 * KB)  # 2 chunks
    plan = srm.ctx.bcast_plan(0)
    assert plan.stream_base[1] == 2
    run_broadcast(machine, srm, 192 * KB)  # 3 chunks
    assert plan.stream_base[1] == 5
    assert plan.stream_arrival[1].value == 5  # never consumed, only watched


def test_interrupts_reenabled_after_failure_free_run():
    machine, srm = build("srm", ClusterSpec(nodes=2, tasks_per_node=2))
    run_broadcast(machine, srm, 1 * KB)
    run_broadcast(machine, srm, 256 * KB)
    for task in machine.tasks:
        assert task.lapi.interrupts_enabled


# ---------------------------------------------------------------------------
# reduce staging discipline
# ---------------------------------------------------------------------------


def test_reduce_staging_slots_alternate_across_calls():
    from repro.mpi.ops import SUM

    machine, srm = build("srm", ClusterSpec(nodes=2, tasks_per_node=1))
    plan = srm.ctx.reduce_plan(0)
    for call in range(3):
        sources = {r: np.full(8, float(call + r + 1)) for r in range(2)}
        destination = np.zeros(8)

        def program(task):
            dst = destination if task.rank == 0 else None
            yield from srm.reduce(task, sources[task.rank], dst, SUM, root=0)

        machine.launch(program)
        assert np.all(destination == 2 * call + 3)
    # Child rank 1 sent 3 chunks; parity bookkeeping advanced identically
    # on both sides of the edge.
    assert plan.sent_seq[1] == 3
    assert plan.recv_seq[1] == 3
    machine.engine.run()
    assert plan.free[1][0].value + plan.free[1][1].value == 2  # credits restored


def test_reduce_pipeline_overlaps_smp_and_network():
    """With chunking, total time must be well under (chunks x single-chunk
    time): the SMP stage of chunk c+1 overlaps the wire time of chunk c."""
    from repro.mpi.ops import SUM

    def timed(count):
        machine, srm = build("srm", ClusterSpec(nodes=4, tasks_per_node=8))
        sources = {r: np.ones(count) for r in range(32)}
        destination = np.zeros(count)

        def program(task):
            dst = destination if task.rank == 0 else None
            yield from srm.reduce(task, sources[task.rank], dst, SUM, root=0)

        machine.launch(program)
        start = machine.now
        machine.launch(program)
        return machine.now - start

    one_chunk = timed(512)          # 4 KB -> single chunk
    eight_chunks = timed(512 * 8)   # 32 KB -> eight 4 KB chunks
    assert eight_chunks < 8 * one_chunk * 0.9


# ---------------------------------------------------------------------------
# allreduce regimes
# ---------------------------------------------------------------------------


def test_allreduce_switches_regime_at_16k():
    from repro.mpi.ops import SUM

    machine, srm = build("srm", ClusterSpec(nodes=2, tasks_per_node=2))
    plan = srm.ctx.allreduce_plan()

    def run(count):
        sources = {r: np.full(count, 1.0) for r in range(4)}
        outs = {r: np.zeros(count) for r in range(4)}

        def program(task):
            yield from srm.allreduce(task, sources[task.rank], outs[task.rank], SUM)

        machine.launch(program)
        return outs

    run(2048)  # 16 KB: exchange path -> call_seq advances
    assert plan.call_seq[0] == 1 and plan.call_seq[2] == 1
    run(4096)  # 32 KB: pipelined path -> exchange state untouched
    assert plan.call_seq[0] == 1


def test_allreduce_exchange_counters_consumed():
    from repro.mpi.ops import SUM

    machine, srm = build("srm", ClusterSpec(nodes=4, tasks_per_node=1))
    sources = {r: np.full(16, float(r)) for r in range(4)}
    outs = {r: np.zeros(16) for r in range(4)}

    def program(task):
        yield from srm.allreduce(task, sources[task.rank], outs[task.rank], SUM)

    machine.launch(program)
    machine.engine.run()
    plan = srm.ctx.allreduce_plan()
    for node, counters in plan.arrival.items():
        for counter in counters:
            assert counter.value == 0, f"unconsumed RD counter on node {node}"


# ---------------------------------------------------------------------------
# barrier counter discipline
# ---------------------------------------------------------------------------


def test_barrier_counters_return_to_zero():
    machine, srm = build("srm", ClusterSpec(nodes=8, tasks_per_node=2))

    def program(task):
        for _ in range(3):
            yield from srm.barrier(task)

    machine.launch(program)
    machine.engine.run()
    plan = srm.ctx.barrier_plan()
    for counters in plan.counters.values():
        assert all(counter.value == 0 for counter in counters)


# ---------------------------------------------------------------------------
# ring allreduce (alternative large-message algorithm)
# ---------------------------------------------------------------------------


def test_ring_allreduce_correct_and_repeatable():
    from repro.mpi.ops import SUM

    machine, srm = build(
        "srm",
        ClusterSpec(nodes=4, tasks_per_node=3),
        srm_config=SRMConfig(allreduce_algorithm="ring"),
    )
    total = 12
    rng = np.random.default_rng(5)
    for _call in range(3):
        count = int(rng.integers(3000, 60_000))
        sources = {r: rng.random(count) for r in range(total)}
        outs = {r: np.zeros(count) for r in range(total)}

        def program(task):
            yield from srm.allreduce(task, sources[task.rank], outs[task.rank], SUM)

        machine.launch(program)
        expected = np.sum(np.stack(list(sources.values())), axis=0)
        for rank in range(total):
            assert np.allclose(outs[rank], expected)


def test_ring_allreduce_small_messages_still_use_exchange():
    from repro.mpi.ops import SUM

    machine, srm = build(
        "srm",
        ClusterSpec(nodes=2, tasks_per_node=2),
        srm_config=SRMConfig(allreduce_algorithm="ring"),
    )
    sources = {r: np.full(16, 1.0) for r in range(4)}
    outs = {r: np.zeros(16) for r in range(4)}

    def program(task):
        yield from srm.allreduce(task, sources[task.rank], outs[task.rank], SUM)

    machine.launch(program)
    assert all(np.all(outs[r] == 4) for r in range(4))
    # Ring plan never built for sub-cutoff messages.
    assert getattr(srm.ctx, "_ring_allreduce_plan", None) is None


def test_ring_allreduce_group():
    from repro.core import SRM
    from repro.machine import Machine
    from repro.mpi.ops import SUM

    machine = Machine(ClusterSpec(nodes=4, tasks_per_node=4))
    members = [0, 1, 5, 9, 13, 14]
    srm = SRM(machine, group=members, config=SRMConfig(allreduce_algorithm="ring"))
    sources = {r: np.full(30_000, float(r + 1)) for r in members}
    outs = {r: np.zeros(30_000) for r in members}

    def program(task):
        yield from srm.allreduce(task, sources[task.rank], outs[task.rank], SUM)

    machine.launch(program, ranks=members)
    expected = sum(r + 1 for r in members)
    for rank in members:
        assert np.all(outs[rank] == expected)


def test_ring_allreduce_config_validation():
    import pytest as _pytest

    from repro.errors import ConfigurationError

    with _pytest.raises(ConfigurationError):
        SRMConfig(allreduce_algorithm="tree")
