"""Tests for the metrics registry (repro.obs.metrics)."""

import pytest

from repro.errors import ConfigurationError
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    TimeWeightedHistogram,
)


def test_counter_accumulates():
    counter = Counter("c")
    counter.inc()
    counter.inc(41)
    assert counter.value == 42
    assert counter.to_dict() == {"value": 42}


def test_gauge_set_inc_dec():
    gauge = Gauge("g")
    gauge.set(10)
    gauge.inc(5)
    gauge.dec(2)
    assert gauge.value == 13


def test_histogram_statistics():
    hist = Histogram("h")
    for value in (1, 2, 3, 1024):
        hist.observe(value)
    assert hist.count == 4
    assert hist.total == 1030
    assert hist.mean == pytest.approx(257.5)
    assert hist.min == 1
    assert hist.max == 1024
    data = hist.to_dict()
    assert data["count"] == 4
    assert sum(data["buckets"].values()) == 4


def test_histogram_power_of_two_buckets():
    hist = Histogram("h")
    hist.observe(0)  # <=0 bucket
    hist.observe(1)  # <=2^0
    hist.observe(2)  # <=2^1
    hist.observe(3)  # <=2^2
    buckets = hist.to_dict()["buckets"]
    assert buckets["<=0"] == 1
    assert buckets["<=2^0"] == 1
    assert buckets["<=2^1"] == 1
    assert buckets["<=2^2"] == 1


def test_empty_histogram_serializes():
    data = Histogram("h").to_dict()
    assert data["count"] == 0
    assert data["min"] is None and data["max"] is None


def test_time_weighted_histogram_exact_average():
    clock = {"now": 0.0}
    hist = TimeWeightedHistogram("t", clock=lambda: clock["now"])
    hist.observe(2)  # value 2 held over [0, 10)
    clock["now"] = 10.0
    hist.observe(4)  # value 4 held over [10, 20)
    clock["now"] = 20.0
    # (2*10 + 4*10) / 20 — the open interval counts without being settled.
    assert hist.time_average == pytest.approx(3.0)
    assert hist.current == 4
    assert hist.min == 2 and hist.max == 4
    data = hist.to_dict()
    assert data["observations"] == 2


def test_histogram_percentiles_interpolate_and_clamp():
    hist = Histogram("h")
    for _ in range(99):
        hist.observe(4)
    hist.observe(1024)
    # The 4s bucket covers (2, 4]; interpolation stays clamped to min=4.
    assert hist.percentile(50) == 4
    assert hist.percentile(99) == 4
    assert hist.percentile(100) == 1024
    assert hist.percentile(50) <= hist.percentile(95) <= hist.percentile(99)


def test_histogram_single_value_percentiles_are_exact():
    hist = Histogram("h")
    hist.observe(7)
    for q in (0, 50, 95, 99, 100):
        assert hist.percentile(q) == 7


def test_empty_histogram_percentiles_are_zero():
    hist = Histogram("h")
    assert hist.percentile(50) == 0.0
    data = hist.to_dict()
    assert data["p50"] == 0.0 and data["p95"] == 0.0 and data["p99"] == 0.0


def test_percentile_out_of_range_rejected():
    hist = Histogram("h")
    hist.observe(1)
    with pytest.raises(ConfigurationError):
        hist.percentile(-1)
    with pytest.raises(ConfigurationError):
        hist.percentile(101)


def test_histogram_to_dict_includes_percentiles():
    hist = Histogram("h")
    hist.observe(16)
    data = hist.to_dict()
    assert data["p50"] == 16 and data["p95"] == 16 and data["p99"] == 16


def test_time_weighted_percentiles_weight_by_held_time():
    clock = {"now": 0.0}
    hist = TimeWeightedHistogram("t", clock=lambda: clock["now"])
    hist.observe(2)  # held over [0, 10)
    clock["now"] = 10.0
    hist.observe(8)  # held over [10, 20) — the open interval must count
    clock["now"] = 20.0
    # 2 for half the time: the median is 2; the tail interpolates in (4, 8].
    assert hist.percentile(50) == pytest.approx(2.0)
    assert hist.percentile(95) == pytest.approx(7.6)
    assert hist.percentile(99) == pytest.approx(7.92)
    data = hist.to_dict()
    assert data["p50"] == pytest.approx(2.0)


def test_time_weighted_percentile_empty_is_zero():
    assert TimeWeightedHistogram("t").percentile(99) == 0.0


def test_registry_summary_includes_percentiles():
    clock = {"now": 0.0}
    registry = MetricsRegistry(clock=lambda: clock["now"])
    registry.histogram("sizes").observe(5)
    registry.time_histogram("depth").observe(3)
    clock["now"] = 4.0
    summary = registry.summary()
    assert summary["sizes.p50"] == 5
    assert summary["sizes.p95"] == 5
    assert summary["sizes.p99"] == 5
    assert summary["depth.p50"] == 3
    assert {"depth.p95", "depth.p99"} <= set(summary)


def test_registry_get_or_create_is_idempotent():
    registry = MetricsRegistry()
    first = registry.counter("x")
    second = registry.counter("x")
    assert first is second
    assert len(registry) == 1
    assert registry.names() == ["x"]
    assert registry.get("x") is first
    assert registry.get("missing") is None


def test_registry_kind_mismatch_raises():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(ConfigurationError):
        registry.gauge("x")


def test_registry_to_dict_carries_kind_and_help():
    registry = MetricsRegistry()
    registry.counter("c", "help text").inc(3)
    registry.histogram("h").observe(7)
    data = registry.to_dict()
    assert data["c"] == {"kind": "counter", "help": "help text", "value": 3}
    assert data["h"]["kind"] == "histogram"
    assert data["h"]["count"] == 1


def test_null_registry_is_inert():
    registry = NullRegistry()
    assert not registry.enabled
    counter = registry.counter("c")
    counter.inc(100)
    assert counter.value == 0
    hist = registry.histogram("h")
    hist.observe(5)
    assert hist.count == 0
    assert hist.percentile(99) == 0.0
    # All kinds share the single no-op instrument; nothing is registered.
    assert registry.gauge("g") is counter
    assert registry.time_histogram("t") is counter
    assert registry.to_dict() == {}
    assert len(registry) == 0
