"""Unit tests for the LAPI-like RMA substrate."""

import numpy as np
import pytest

from repro.errors import ProtocolError
from repro.lapi import LapiCounter
from repro.machine import ClusterSpec, CostModel, Machine


@pytest.fixture
def machine():
    return Machine(ClusterSpec(nodes=2, tasks_per_node=4))


# ---------------------------------------------------------------------------
# Counters
# ---------------------------------------------------------------------------


def test_counter_increment_and_get(machine):
    counter = LapiCounter(machine.engine)
    counter.increment()
    counter.increment(3)
    assert counter.value == 4


def test_counter_waitcntr_consumes(machine):
    counter = machine.task(0).lapi.counter()

    def incrementer(t):
        yield t.engine.timeout(1e-6)
        counter.increment(2)

    def waiter(t):
        yield from t.lapi.waitcntr(counter, 2)
        return counter.value

    def program(t):
        if t.rank == 0:
            result = yield from waiter(t)
            return result
        yield from incrementer(t)

    result = machine.launch(program, ranks=[0, 1])
    assert result.results[0] == 0  # wait consumed the 2


def test_counter_wait_already_satisfied(machine):
    counter = machine.task(0).lapi.counter(initial=5)

    def program(t):
        yield from t.lapi.waitcntr(counter, 3)
        return counter.value

    result = machine.launch(program, ranks=[0])
    assert result.results[0] == 2


def test_counter_validation(machine):
    counter = LapiCounter(machine.engine)
    with pytest.raises(ProtocolError):
        counter.increment(0)
    with pytest.raises(ProtocolError):
        counter.consume(1)
    with pytest.raises(ProtocolError):
        counter.set(-1)
    with pytest.raises(ProtocolError):
        LapiCounter(machine.engine, initial=-2)


def test_counter_set_wakes_waiters(machine):
    counter = machine.task(0).lapi.counter()

    def setter(t):
        yield t.engine.timeout(1e-6)
        counter.set(10)

    def program(t):
        if t.rank == 0:
            yield from t.lapi.waitcntr(counter, 10)
            return True
        yield from setter(t)

    assert machine.launch(program, ranks=[0, 1]).results[0]


# ---------------------------------------------------------------------------
# Put
# ---------------------------------------------------------------------------


def test_put_moves_data_across_nodes(machine):
    src = np.arange(100, dtype=np.float64)
    dst = np.zeros_like(src)
    target_counter = machine.task(4).lapi.counter()

    def program(t):
        if t.rank == 0:
            yield from t.lapi.put(4, dst, src, target_counter=target_counter)
        else:
            yield from t.lapi.waitcntr(target_counter, 1)

    machine.launch(program, ranks=[0, 4])
    assert np.array_equal(dst, src)


def test_put_timing_is_latency_plus_bandwidth(machine):
    nbytes = 1_000_000
    src = np.ones(nbytes, np.uint8)
    dst = np.zeros_like(src)
    target_counter = machine.task(4).lapi.counter()

    def program(t):
        if t.rank == 0:
            yield from t.lapi.put(4, dst, src, target_counter=target_counter)
        else:
            yield from t.lapi.waitcntr(target_counter, 1)

    cost = machine.cost
    expected = (
        cost.rma_origin_overhead
        + cost.net_latency
        + nbytes / cost.net_bandwidth
        + cost.rma_target_overhead
        + cost.counter_update_cost
    )
    elapsed = machine.launch(program, ranks=[0, 4]).elapsed
    assert elapsed == pytest.approx(expected, rel=0.02)


def test_put_origin_counter_fires_at_injection(machine):
    src = np.ones(10_000, np.uint8)
    dst = np.zeros_like(src)
    origin_counter = machine.task(0).lapi.counter()

    def program(t):
        yield from t.lapi.put(4, dst, src, origin_counter=origin_counter)
        return origin_counter.value

    result = machine.launch(program, ranks=[0])
    assert result.results[0] == 1
    # Origin side returns in ~the injection overhead, not the full wire time.
    assert result.elapsed < machine.cost.wire_time(10_000)
    machine.engine.run()  # let the delivery drain
    assert np.array_equal(dst, src)


def test_put_completion_counter_includes_ack(machine):
    src = np.ones(1000, np.uint8)
    dst = np.zeros_like(src)
    completion = machine.task(0).lapi.counter()

    def program(t):
        if t.rank == 0:
            yield from t.lapi.put(4, dst, src, completion_counter=completion)
            yield from t.lapi.waitcntr(completion, 1)
            return t.engine.now
        # Target polls so delivery needs no interrupt.
        yield from t.lapi.waitcntr(t.lapi.counter(initial=1), 1)

    result = machine.launch(program, ranks=[0, 4])
    # Round trip: there and back.
    assert result.results[0] >= 2 * machine.cost.net_latency


def test_put_size_mismatch_rejected(machine):
    def program(t):
        yield from t.lapi.put(4, np.zeros(4), np.zeros(8))

    with pytest.raises(ProtocolError):
        machine.launch(program, ranks=[0])


def test_put_intra_node_is_cheap(machine):
    src = np.ones(1000, np.uint8)
    dst = np.zeros_like(src)
    counter = machine.task(1).lapi.counter()

    def program(t):
        if t.rank == 0:
            yield from t.lapi.put(1, dst, src, target_counter=counter)
        else:
            yield from t.lapi.waitcntr(counter, 1)

    elapsed = machine.launch(program, ranks=[0, 1]).elapsed
    assert elapsed < machine.cost.net_latency  # no wire hop
    assert np.array_equal(dst, src)


def test_put_snapshot_semantics(machine):
    # Origin may reuse its source buffer immediately after put returns.
    src = np.ones(100, np.uint8)
    dst = np.zeros_like(src)
    counter = machine.task(4).lapi.counter()

    def program(t):
        if t.rank == 0:
            yield from t.lapi.put(4, dst, src, target_counter=counter)
            src[:] = 99  # scribble after injection
        else:
            yield from t.lapi.waitcntr(counter, 1)

    machine.launch(program, ranks=[0, 4])
    assert np.all(dst == 1)  # the put carried the pre-scribble bytes


def test_zero_byte_put_acts_as_signal(machine):
    counter = machine.task(4).lapi.counter()
    empty = np.zeros(0, np.uint8)

    def program(t):
        if t.rank == 0:
            yield from t.lapi.put(4, empty, empty, target_counter=counter)
        else:
            yield from t.lapi.waitcntr(counter, 1)

    elapsed = machine.launch(program, ranks=[0, 4]).elapsed
    assert elapsed == pytest.approx(
        machine.cost.rma_origin_overhead
        + machine.cost.net_latency
        + machine.cost.rma_target_overhead
        + machine.cost.counter_update_cost,
        rel=0.05,
    )


# ---------------------------------------------------------------------------
# Interrupt management
# ---------------------------------------------------------------------------


def test_arrival_outside_lapi_call_pays_interrupt(machine):
    src = np.ones(100, np.uint8)
    dst = np.zeros_like(src)
    counter = machine.task(4).lapi.counter()

    def program(t):
        if t.rank == 0:
            yield from t.lapi.put(4, dst, src, target_counter=counter)
        else:
            # Target computes, never entering a LAPI call.
            yield from t.compute(1e-3)

    machine.launch(program, ranks=[0, 4])
    assert machine.task(4).stats.interrupts == 1


def test_arrival_during_waitcntr_needs_no_interrupt(machine):
    src = np.ones(100, np.uint8)
    dst = np.zeros_like(src)
    counter = machine.task(4).lapi.counter()

    def program(t):
        if t.rank == 0:
            yield from t.lapi.put(4, dst, src, target_counter=counter)
        else:
            yield from t.lapi.waitcntr(counter, 1)

    machine.launch(program, ranks=[0, 4])
    assert machine.task(4).stats.interrupts == 0


def test_interrupts_disabled_stalls_until_poll(machine):
    src = np.ones(100, np.uint8)
    dst = np.zeros_like(src)
    counter = machine.task(4).lapi.counter()
    stall_duration = 5e-3

    def program(t):
        if t.rank == 0:
            yield from t.lapi.put(4, dst, src, target_counter=counter)
        else:
            t.lapi.set_interrupts(False)
            yield from t.compute(stall_duration)  # data arrives meanwhile
            assert counter.value == 0  # delivery is stalled
            yield from t.lapi.waitcntr(counter, 1)  # polling completes it
            t.lapi.set_interrupts(True)
            return t.engine.now

    result = machine.launch(program, ranks=[0, 4])
    assert result.results[4] >= stall_duration
    assert machine.task(4).lapi.stats.stalled_deliveries == 1
    assert np.array_equal(dst, src)


# ---------------------------------------------------------------------------
# Get / rmw / active messages
# ---------------------------------------------------------------------------


def test_get_pulls_remote_data(machine):
    remote = np.arange(50, dtype=np.float64)
    local = np.zeros_like(remote)
    done = machine.task(0).lapi.counter()

    def program(t):
        if t.rank == 0:
            yield from t.lapi.get(4, local, remote, completion_counter=done)
            yield from t.lapi.waitcntr(done, 1)
        else:
            yield from t.lapi.waitcntr(t.lapi.counter(initial=1), 1)

    machine.launch(program, ranks=[0, 4])
    assert np.array_equal(local, remote)


def test_rmw_add_returns_old_value(machine):
    counter = machine.task(4).lapi.counter(initial=10)

    def program(t):
        if t.rank == 0:
            old = yield from t.lapi.rmw_add(4, counter, 5)
            return old
        yield from t.lapi.waitcntr(t.lapi.counter(initial=1), 1)

    result = machine.launch(program, ranks=[0, 4])
    assert result.results[0] == 10
    assert counter.value == 15


def test_amsend_runs_handler_at_target(machine):
    seen = []

    def handler(target_task, payload):
        seen.append((target_task.rank, payload))

    def program(t):
        if t.rank == 0:
            yield from t.lapi.amsend(4, handler, payload="hello", nbytes=64)
        else:
            yield from t.compute(1e-3)

    machine.launch(program, ranks=[0, 4])
    assert seen == [(4, "hello")]


def test_probe_releases_stalled_delivery(machine):
    src = np.ones(100, np.uint8)
    dst = np.zeros_like(src)
    counter = machine.task(4).lapi.counter()

    def program(t):
        if t.rank == 0:
            yield from t.lapi.put(4, dst, src, target_counter=counter)
        else:
            t.lapi.set_interrupts(False)
            yield from t.compute(1e-3)
            yield from t.lapi.probe()
            # After an explicit poll the delivery lands without interrupts.
            yield from t.lapi.waitcntr(counter, 1)

    machine.launch(program, ranks=[0, 4])
    assert machine.task(4).stats.interrupts == 0
    assert np.array_equal(dst, src)
