"""Unit tests for ClusterSpec rank/node mapping."""

import pytest

from repro.errors import TopologyError
from repro.machine import ClusterSpec


def test_uniform_spec_basics():
    spec = ClusterSpec(nodes=8, tasks_per_node=16)
    assert spec.total_tasks == 128
    assert spec.uniform
    assert spec.node_sizes == (16,) * 8


def test_block_rank_assignment():
    spec = ClusterSpec(nodes=4, tasks_per_node=4)
    assert spec.node_of(0) == 0
    assert spec.node_of(3) == 0
    assert spec.node_of(4) == 1
    assert spec.node_of(15) == 3


def test_local_index():
    spec = ClusterSpec(nodes=4, tasks_per_node=4)
    assert spec.local_index(0) == 0
    assert spec.local_index(5) == 1
    assert spec.local_index(15) == 3


def test_ranks_on_node():
    spec = ClusterSpec(nodes=3, tasks_per_node=2)
    assert list(spec.ranks_on_node(1)) == [2, 3]


def test_rank_at_round_trips():
    spec = ClusterSpec(nodes=5, tasks_per_node=7)
    for rank in range(spec.total_tasks):
        node = spec.node_of(rank)
        local = spec.local_index(rank)
        assert spec.rank_at(node, local) == rank


def test_nonuniform_sizes():
    # The 15-of-16 daemon-avoidance configuration from §2.1.
    spec = ClusterSpec(nodes=3, tasks_per_node=[16, 15, 16])
    assert spec.total_tasks == 47
    assert not spec.uniform
    assert spec.node_of(16) == 1
    assert spec.node_of(30) == 1
    assert spec.node_of(31) == 2


def test_same_node_predicate():
    spec = ClusterSpec(nodes=2, tasks_per_node=3)
    assert spec.same_node(0, 2)
    assert not spec.same_node(2, 3)


def test_tree_height_bound():
    assert ClusterSpec(nodes=8, tasks_per_node=16).tree_height_bound() == 7
    assert ClusterSpec(nodes=1, tasks_per_node=1).tree_height_bound() == 0
    assert ClusterSpec(nodes=1, tasks_per_node=3).tree_height_bound() == 2


def test_invalid_shapes_rejected():
    with pytest.raises(TopologyError):
        ClusterSpec(nodes=0)
    with pytest.raises(TopologyError):
        ClusterSpec(nodes=2, tasks_per_node=0)
    with pytest.raises(TopologyError):
        ClusterSpec(nodes=2, tasks_per_node=[4])
    with pytest.raises(TopologyError):
        ClusterSpec(nodes=2, tasks_per_node=[4, 0])


def test_rank_bounds_checked():
    spec = ClusterSpec(nodes=2, tasks_per_node=2)
    with pytest.raises(TopologyError):
        spec.node_of(4)
    with pytest.raises(TopologyError):
        spec.node_of(-1)
    with pytest.raises(TopologyError):
        spec.rank_at(0, 2)
    with pytest.raises(TopologyError):
        spec.node_size(2)


def test_str_is_informative():
    assert "8 nodes x 16 tasks" in str(ClusterSpec(nodes=8, tasks_per_node=16))
