"""Unit + property tests for tree families and the SMP embedding."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, TopologyError
from repro.machine import ClusterSpec
from repro.trees import (
    RankTree,
    Tree,
    binary_tree,
    binomial_tree,
    binomial_rounds,
    build_tree,
    delayed_tree,
    fibonacci_tree,
    flat_tree,
    kary_tree,
    map_to_ranks,
    naive_rank_tree,
    smp_embedding,
)


# ---------------------------------------------------------------------------
# Tree basics
# ---------------------------------------------------------------------------


def test_tree_rejects_invalid_parents():
    with pytest.raises(TopologyError):
        Tree([])
    with pytest.raises(TopologyError):
        Tree([0])  # root must have parent None
    with pytest.raises(TopologyError):
        Tree([None, 5])  # out of range
    with pytest.raises(TopologyError):
        Tree([None, None])  # second root / disconnected


def test_tree_levels_and_height():
    tree = Tree([None, 0, 0, 1])
    assert tree.level_of(0) == 0
    assert tree.level_of(3) == 2
    assert tree.height == 2
    assert tree.subtree_size(0) == 4
    assert tree.subtree_size(1) == 2
    assert sorted(tree.leaves()) == [2, 3]


def test_singleton_tree():
    tree = Tree([None])
    assert tree.height == 0
    assert tree.leaves() == [0]
    assert tree.max_degree() == 0


# ---------------------------------------------------------------------------
# Binomial
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("size", [1, 2, 3, 4, 7, 8, 16, 100, 128, 256])
def test_binomial_height_is_max_popcount(size):
    # Depth of vertex v is popcount(v) in the MPICH orientation.
    expected = max(bin(v).count("1") for v in range(size))
    assert binomial_tree(size).height == expected


@pytest.mark.parametrize("size", [1, 2, 3, 4, 7, 8, 16, 100, 128, 256])
def test_binomial_rounds_is_ceil_log2(size):
    # Paper equation (1): h(P) = ceil(log2 P) communication rounds.
    expected = math.ceil(math.log2(size)) if size > 1 else 0
    assert binomial_rounds(size) == expected


def test_binomial_structure_power_of_two():
    tree = binomial_tree(8)
    # Parent clears the lowest set bit.
    assert tree.parents[1] == 0
    assert tree.parents[5] == 4
    assert tree.parents[6] == 4
    assert tree.parents[7] == 6
    assert tree.parents[3] == 2
    # Root fans out to the powers of two, largest subtree first.
    assert sorted(tree.children[0]) == [1, 2, 4]
    assert tree.children[0][0] == 4
    assert tree.subtree_size(4) == 4


def test_binomial_root_degree_is_log_p():
    assert binomial_tree(256).children[0].__len__() == 8


# ---------------------------------------------------------------------------
# Other families
# ---------------------------------------------------------------------------


def test_binary_tree_structure():
    tree = binary_tree(7)
    assert tree.children[0] == [1, 2]
    assert tree.children[1] == [3, 4]
    assert tree.height == 2


def test_kary_tree_structure():
    tree = kary_tree(13, 3)
    assert tree.children[0] == [1, 2, 3]
    assert tree.children[1] == [4, 5, 6]
    with pytest.raises(ConfigurationError):
        kary_tree(5, 0)


def test_flat_tree_structure():
    tree = flat_tree(5)
    assert tree.children[0] == [1, 2, 3, 4]
    assert tree.height == 1
    assert tree.max_degree() == 4


def test_fibonacci_growth():
    # With send delay 2, informed counts grow per the Fibonacci recurrence:
    # slower than binomial doubling, so covering the same participants needs
    # more rounds and a wider root (the root sends every step).
    fib = fibonacci_tree(32)
    assert fib.size == 32
    assert fib.max_degree() >= binomial_tree(32).max_degree()
    assert fibonacci_tree(1).size == 1


def test_delayed_tree_delay_one_matches_binomial_growth():
    # delay=1 doubles per round: same height as the binomial tree.
    for size in (2, 8, 31, 64):
        assert delayed_tree(size, 1).height == binomial_tree(size).height


def test_delayed_tree_validation():
    with pytest.raises(ConfigurationError):
        delayed_tree(0, 1)
    with pytest.raises(ConfigurationError):
        delayed_tree(5, 0)


@given(size=st.integers(1, 200), delay=st.integers(1, 4))
@settings(max_examples=50, deadline=None)
def test_delayed_tree_always_valid(size, delay):
    tree = delayed_tree(size, delay)
    assert tree.size == size  # Tree() validates connectivity/acyclicity


@given(size=st.integers(1, 300))
@settings(max_examples=50, deadline=None)
def test_binomial_always_valid_and_logarithmic(size):
    tree = binomial_tree(size)
    assert tree.size == size
    if size > 1:
        rounds = math.ceil(math.log2(size))
        assert tree.height == max(bin(v).count("1") for v in range(size))
        assert tree.height <= rounds
        assert tree.max_degree() <= rounds
        assert binomial_rounds(size) == rounds


def test_build_tree_dispatch():
    assert build_tree("binomial", 8).height == 3
    assert build_tree("flat", 8).height == 1
    assert build_tree("kary", 8, arity=3).children[0] == [1, 2, 3]
    with pytest.raises(ConfigurationError):
        build_tree("kary", 8)
    with pytest.raises(ConfigurationError):
        build_tree("nonsense", 8)


# ---------------------------------------------------------------------------
# RankTree mapping
# ---------------------------------------------------------------------------


def test_map_to_ranks_relabels():
    tree = binomial_tree(4)
    mapped = map_to_ranks(tree, [10, 20, 30, 40])
    assert mapped.root == 10
    assert mapped.parent_of(10) is None
    assert set(mapped.ranks) == {10, 20, 30, 40}
    assert mapped.parent_of(40) in (10, 20, 30)


def test_map_to_ranks_validation():
    tree = binomial_tree(4)
    with pytest.raises(ConfigurationError):
        map_to_ranks(tree, [1, 2, 3])
    with pytest.raises(ConfigurationError):
        map_to_ranks(tree, [1, 2, 3, 3])


def test_rank_tree_queries_unknown_rank():
    tree = map_to_ranks(binomial_tree(2), [5, 9])
    with pytest.raises(TopologyError):
        tree.parent_of(7)
    with pytest.raises(TopologyError):
        tree.children_of(7)


def test_rank_tree_rejects_bad_root():
    with pytest.raises(TopologyError):
        RankTree(root=1, parent={1: 2, 2: None}, children={1: [], 2: [1]})


# ---------------------------------------------------------------------------
# Naive embedding (the MPI baselines' view)
# ---------------------------------------------------------------------------


def test_naive_tree_rotates_by_root():
    spec = ClusterSpec(nodes=2, tasks_per_node=4)
    tree = naive_rank_tree(spec, root=5)
    assert tree.root == 5
    assert set(tree.ranks) == set(range(8))


def test_naive_tree_crosses_nodes_heavily():
    spec = ClusterSpec(nodes=8, tasks_per_node=16)
    # The SMP-aware embedding uses exactly nodes-1 network edges for ANY
    # root (Fig. 1).  The naive rotated-rank binomial happens to align with
    # node boundaries for root 0 on power-of-two shapes, but any other root
    # destroys the alignment — one reason arbitrary-root MPI collectives
    # underuse shared memory.
    for root in (0, 5, 77):
        embedded = smp_embedding(spec, root=root).combined()
        assert embedded.cross_node_edges(spec) == spec.nodes - 1
    assert naive_rank_tree(spec, root=0).cross_node_edges(spec) == 7
    assert naive_rank_tree(spec, root=5).cross_node_edges(spec) > 7
    assert naive_rank_tree(spec, root=77).cross_node_edges(spec) > 7


# ---------------------------------------------------------------------------
# SMP embedding
# ---------------------------------------------------------------------------


def test_embedding_representatives():
    spec = ClusterSpec(nodes=4, tasks_per_node=4)
    trees = smp_embedding(spec, root=6)
    # Root's node is represented by the root itself; others by their master.
    assert trees.representatives[1] == 6
    assert trees.representatives[0] == 0
    assert trees.representatives[2] == 8
    assert trees.is_representative(6)
    assert not trees.is_representative(5)
    assert trees.representative_of(7) == 6


def test_embedding_inter_tree_spans_representatives():
    spec = ClusterSpec(nodes=8, tasks_per_node=16)
    trees = smp_embedding(spec, root=0)
    assert trees.inter.root == 0
    assert set(trees.inter.ranks) == {spec.first_rank(n) for n in range(8)}
    assert trees.inter.height() == 3


def test_embedding_intra_trees_cover_each_node():
    spec = ClusterSpec(nodes=3, tasks_per_node=5)
    trees = smp_embedding(spec, root=7)
    for node in range(3):
        node_tree = trees.intra[node]
        assert set(node_tree.ranks) == set(spec.ranks_on_node(node))
        assert node_tree.root == trees.representatives[node]


def test_embedding_combined_is_valid_spanning_tree():
    spec = ClusterSpec(nodes=4, tasks_per_node=4)
    combined = smp_embedding(spec, root=5).combined()
    assert combined.root == 5
    assert set(combined.ranks) == set(range(16))
    # Every non-root has exactly one parent and is reachable (height walks
    # the whole tree or would KeyError).
    assert combined.height() >= 1


def test_embedding_height_optimal_for_powers_of_two():
    # Paper Fig. 1: 128 tasks on 8x16 keeps the binomial height log2(128)=7.
    spec = ClusterSpec(nodes=8, tasks_per_node=16)
    trees = smp_embedding(spec, root=0)
    assert trees.height() == 7


def test_embedding_height_optimal_for_15_of_16():
    # §2.1: the 15-of-16 daemon configuration is still optimal — the
    # embedding is no taller than the flat binomial bound ceil(log2 120).
    spec = ClusterSpec(nodes=8, tasks_per_node=15)
    trees = smp_embedding(spec, root=0)
    assert trees.height() <= math.ceil(math.log2(120))


@given(
    nodes=st.integers(1, 10),
    tasks=st.integers(1, 20),
    root_seed=st.integers(0, 10_000),
)
@settings(max_examples=60, deadline=None)
def test_embedding_properties(nodes, tasks, root_seed):
    spec = ClusterSpec(nodes=nodes, tasks_per_node=tasks)
    root = root_seed % spec.total_tasks
    trees = smp_embedding(spec, root)
    combined = trees.combined()
    # Spanning: every rank appears exactly once.
    assert set(combined.ranks) == set(range(spec.total_tasks))
    # Exactly n-1 network edges.
    assert combined.cross_node_edges(spec) == nodes - 1
    # Height bound: never worse than the two-level binomial sum.
    bound = (math.ceil(math.log2(nodes)) if nodes > 1 else 0) + (
        math.ceil(math.log2(tasks)) if tasks > 1 else 0
    )
    assert combined.height() <= max(bound, 0 if spec.total_tasks == 1 else 1)


def test_embedding_family_selection():
    spec = ClusterSpec(nodes=4, tasks_per_node=4)
    flat_intra = smp_embedding(spec, 0, intra_family="flat")
    for node_tree in flat_intra.intra.values():
        assert node_tree.height() <= 1
    fib_inter = smp_embedding(spec, 0, inter_family="fibonacci")
    assert fib_inter.inter.size == 4
